"""Horizontally-scaled serving: scatter-gather over sharded services.

The paper's net sits behind Alibaba search and recommendation — traffic
no single store answers.  :class:`AliCoCoCluster` is that deployment
shape in miniature: the frozen net is hash-split across N shard stores
(:mod:`repro.serving.shard`), each served by an ordinary
:class:`~repro.serving.AliCoCoService`, and the cluster exposes the
*same eight endpoints* with the same answers:

- **Routed** endpoints (``items_for_concept``, ``concepts_for_item``,
  ``interpretation``, ``hypernyms``, ``tag``) touch one shard — the
  partitioned node's owner, or shard 0 for replicated-layer queries.
  The placement invariant (every relation incident to a node lives on
  its owner shard, in global insertion order) makes the routed answer
  bit-identical to the monolithic service's.
- **Scattered** endpoints (``search`` and the two ``*_reranked``) fan
  out to every shard and merge deterministically: per-shard BM25
  *projections* score with global corpus statistics, so merging local
  top-k lists by ``(-score, global fit position)`` reproduces the global
  ranking bit for bit (:func:`~repro.serving.shard.merge_ranked`).
  Reranking runs in two phases — gather the first-stage pool globally,
  then scatter the scoring back to each candidate's owner shard (whose
  doc-encoding cache already holds it) and merge by ``(-probability,
  id)``, the single-service sort contract.  Per-candidate scores are
  pool-composition independent (the PR 5 bit-identity contract), so the
  merged ranking equals the single-service one.  With approximate dense
  backends (``ivf``/``hnsw``) per-shard recall differs from a global
  index by construction; the bit-identity guarantee covers ``bm25`` and
  ``bruteforce`` first stages (what the bench gates).

On top of the fan-out sit the two traffic-shaping layers this module
adds (both off the hot path of a cache hit):

- **Request coalescing** (:mod:`repro.serving.coalesce`): the reranked
  endpoints — the model-bound hot path — deduplicate concurrent
  identical requests into one ``score_pool`` computation, optionally
  widened by a coalescing window.  Results are serial-identical because
  the computation is deterministic over frozen state.
- **Admission control** (:mod:`repro.serving.admission`): every
  computed request holds one of ``max_inflight`` slots; beyond
  ``max_queue_depth`` waiters or ``max_queue_wait_ms`` of waiting the
  cluster sheds with :class:`~repro.errors.OverloadedError` instead of
  queueing without bound.  Coalescing sits *outside* admission, so N
  duplicate requests consume one slot, not N — and a joiner can never
  deadlock waiting for a leader that is itself queued behind the
  joiner's slot.

A cluster snapshot is one ordinary snapshot file: the global store and
global concept index plus *per-shard* index states (``…@shard{i}``) and
a ``cluster`` meta record pinning the shard count.  Loading with the
same shard count rehydrates every shard index without re-fitting;
loading with a different count re-splits deterministically from the
global state.

**Generation advancement.**  A cluster over a
:class:`~repro.kg.generations.GenerationalStore` is not pinned forever:
:meth:`AliCoCoCluster.publish` seals the source store's open delta and
advances every shard in a **two-phase** publish.  Phase one grows each
shard's own generational store (delta nodes route through
:func:`~repro.serving.shard.shard_of`, relations land on their owner
shards with ghost replicas, all invisible to readers), extends the
global concept index, and installs each shard's next generation; phase
two installs one immutable :class:`ClusterGeneration` bundle — global
view, global index, per-shard projections, merge position maps and the
per-shard :class:`~repro.serving.ServingGeneration` pins — with a
single attribute assignment.  Scattered reads pin the bundle at entry
and read only from it, so a fan-out never mixes two generations:
every answer is a whole generation, before or after, never a blend.

**Executors.**  ``ClusterConfig(executor="thread")`` (the default) runs
every shard service in-process — simple, but per-shard work is pure
Python, so fan-out serializes on the GIL and adding shards buys almost
no throughput.  ``executor="process"`` moves each shard into its own
worker process (:mod:`repro.serving.procpool`): the parent writes one
bootstrap snapshot per shard, spawns a worker over each, and serves
the same eight endpoints by routing point queries and scattering
batched arm requests over a compact framed RPC
(:mod:`repro.serving.rpc`).  Answers are bit-identical to the thread
executor's — workers serve the same stores, the same index projections
(global corpus statistics) and the same models — while scattered
sub-requests compute on separate interpreters in parallel, so the
throughput-vs-shard-count curve actually bends upward
(``benchmarks/bench_cluster.py`` gates it).  Cache → coalesce → admit
ordering stays in the parent either way, publish() ships its delta to
workers over the same RPC, and a crashed worker restarts from its
snapshot plus the replayed delta log — or, past the restart budget,
degrades to a typed :class:`~repro.errors.ShardUnavailableError` while
healthy shards keep answering.
"""

from __future__ import annotations

import shutil
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..concepts.tagging import ConceptTagger
from ..errors import (
    ConfigError,
    DataError,
    DuplicateNodeError,
    ShardUnavailableError,
)
from ..kg.generations import GenerationalStore
from ..kg.ids import ECOMMERCE_PREFIX, ITEM_PREFIX, layer_of
from ..kg.serialize import (
    generational_store_from_snapshot,
    load_snapshot,
    save_generations,
    save_snapshot,
)
from ..kg.store import AliCoCoStore
from ..matching.bm25 import BM25Index
from ..matching.retrieval import require_dense_capable
from ..ml.module import Module
from ..retrieval import rrf_fuse
from .admission import AdmissionController, AdmissionStats
from .cache import CacheCounters, LRUCache
from .coalesce import Coalescer, CoalescerStats
from .models import (
    RERANKER_KIND,
    TAGGER_KIND,
    dense_query_vector,
    model_bundle_state,
    prepare_serving_module,
    restore_serving_module,
)
from .procpool import ProcessShardPool, ProcPoolStats, ShardWorkerSpec, snapshot_dir_for
from .service import (
    CONCEPT_INDEX,
    DENSE_CONCEPT_INDEX,
    DENSE_ITEM_INDEX,
    RERANKER_MODEL,
    TAGGER_MODEL,
    AliCoCoService,
    BatchResult,
    ServiceConfig,
    ServingGeneration,
    fit_concept_index,
    require_layer,
    require_model,
    save_shard_snapshot,
)
from .shard import (
    is_partitioned,
    merge_ranked,
    owner_shards,
    shard_of,
    shard_sizes,
    split_concept_index,
    split_store,
)
from .stats import EndpointMetrics, EndpointStats, ServiceStats, endpoint_table

#: Snapshot index-state name of the cluster meta record (shard count).
CLUSTER_META = "cluster"

#: Endpoints routed through the coalescer — the model-bound hot path.
COALESCED_ENDPOINTS = ("items_for_concept_reranked", "search_reranked")

#: Sentinel for cache lookups (results may legitimately be falsy).
_MISS = object()

_ON_ERROR_MODES = ("raise", "envelope")


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-tier knobs (the per-shard services take a ``ServiceConfig``).

    Attributes:
        n_shards: Shard stores to split the net across.
        cache_capacity: Cluster-level result-cache entries (`0` disables);
            sits in front of coalescing and admission, so a hot repeat
            never consumes an execution slot.
        coalesce_window_ms: How long a rerank leader waits for duplicate
            requests to pile on before computing (``0`` = pure
            singleflight dedup, no added latency).
        max_inflight: Concurrent computed requests (admission slots).
        max_queue_depth: Requests allowed to wait for a slot; arrivals
            beyond that shed immediately (``OverloadedError``,
            ``reason="queue_full"``).
        max_queue_wait_ms: Longest a queued request may wait before
            shedding (``reason="queue_timeout"``).
        reservoir_capacity: Latency samples per endpoint / wait reservoir.
        seed: Seed for the reservoirs' replacement RNG.
        fanout_workers: Thread-pool size for scatter calls; ``None``
            (default) fans out serially — per-shard work is pure Python
            under the GIL, so threads buy nothing locally, but the knob
            models the parallel fan-out a multi-process deployment gets.
        executor: ``"thread"`` (default) serves every shard in-process;
            ``"process"`` spawns one worker process per shard
            (:mod:`repro.serving.procpool`) — bit-identical answers,
            genuinely parallel scattered arms (the GIL escape).
        max_worker_restarts: Process executor only — respawns allowed
            per crashed worker before its shard degrades to
            :class:`~repro.errors.ShardUnavailableError`.
        worker_dir: Process executor only — directory for the per-shard
            bootstrap snapshots workers boot (and restart) from; a
            private temporary directory when ``None``, removed on
            :meth:`AliCoCoCluster.close`.
    """

    n_shards: int = 2
    cache_capacity: int = 4096
    coalesce_window_ms: float = 0.0
    max_inflight: int = 8
    max_queue_depth: int = 16
    max_queue_wait_ms: float = 200.0
    reservoir_capacity: int = 512
    seed: int = 0
    fanout_workers: int | None = None
    executor: str = "thread"
    max_worker_restarts: int = 2
    worker_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ConfigError(f"n_shards must be positive, got {self.n_shards}")
        if self.executor not in ("thread", "process"):
            raise ConfigError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.cache_capacity < 0:
            raise ConfigError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.coalesce_window_ms < 0:
            raise ConfigError(
                f"coalesce_window_ms must be >= 0, got {self.coalesce_window_ms}"
            )
        if self.fanout_workers is not None and self.fanout_workers <= 0:
            raise ConfigError(
                f"fanout_workers must be positive, got {self.fanout_workers}"
            )
        # max_inflight / max_queue_depth / max_queue_wait_ms are validated
        # by the AdmissionController built from them.


@dataclass(frozen=True)
class ClusterGeneration:
    """One immutable cluster-wide serving state.

    The cluster's counterpart of :class:`~repro.serving.ServingGeneration`:
    everything a scattered read touches — the global view, the global
    concept index, the per-shard projections, the merge tie-break maps
    and each shard's pinned generation — rides one frozen bundle behind
    one attribute.  Requests pin the current instance at entry, so a
    concurrent :meth:`AliCoCoCluster.publish` can never show a fan-out
    two different generations (phase two of the publish installs the
    next bundle with a single atomic assignment).

    Attributes:
        generation_id: The source-store generation this bundle serves.
        store: The pinned global read view.
        search_index: The global BM25 concept index, or ``None``.
        shard_search_indexes: Per-shard projections of ``search_index``
            (global corpus statistics, shard-local postings).
        concept_position / item_position: Node id -> global fit position
            maps for deterministic scatter merges
            (:func:`~repro.serving.shard.merge_ranked`).
        shards: Each shard service's pinned
            :class:`~repro.serving.ServingGeneration`, in shard order.
        node_count / relation_count: Global sizes this bundle covers;
            the next publish routes exactly the rows beyond these counts
            (count slicing survives source-store compaction, which
            reshapes segments but never reorders reads).
        concept_count: E-commerce concepts covered by ``search_index``;
            the next publish extends the index with the nodes past it.
        shards: Empty under the process executor — shard state lives in
            the worker processes, pinned there by ``generation_id``.
        dense_presence: Process executor only — dense index names
            present on at least one worker (reported in the boot hello
            and after every shipped delta); the thread executor reads
            presence off ``shards`` directly.
    """

    generation_id: int
    store: Any
    search_index: BM25Index | None
    shard_search_indexes: tuple[BM25Index | None, ...]
    concept_position: dict[str, int]
    item_position: dict[str, int]
    shards: tuple[ServingGeneration, ...]
    node_count: int
    relation_count: int
    concept_count: int
    dense_presence: tuple[str, ...] = ()


@dataclass(frozen=True)
class ClusterStats:
    """Whole-cluster report: fan-out balance, coalescing, admission, shards.

    Attributes:
        n_shards: Shard count.
        nodes / relations: Global (pre-split) store size.
        cache_*: The cluster-level result cache.
        endpoints: Cluster-level per-endpoint stats (shed requests show
            up as ``OverloadedError`` entries in ``errors``).
        coalescer: Singleflight counters for the reranked endpoints.
        admission: Slot/queue/shed counters and queue-wait percentiles.
        shard_calls: Sub-requests dispatched to each shard (routed ones
            count their owner; scattered ones count every shard).
        shards: Each shard service's own :class:`ServiceStats` (under
            the process executor, fetched from the workers over RPC;
            shards whose worker is unavailable are omitted).
        generation_id: The cluster generation being served (0 for a
            cluster over a plain frozen store).
        executor: Which shard executor answered — ``"thread"`` or
            ``"process"``.
        shard_owned: Partitioned nodes *owned* by each shard (hash
            placement census; replicas not counted).
        workers: Process executor only — per-worker liveness, restart
            budget burn and RPC round-trip percentiles.
    """

    n_shards: int
    nodes: int
    relations: int
    cache_entries: int
    cache_capacity: int
    cache_evictions: int
    endpoints: tuple[EndpointStats, ...]
    coalescer: CoalescerStats
    admission: AdmissionStats
    shard_calls: tuple[int, ...]
    shards: tuple[ServiceStats, ...] = field(repr=False)
    generation_id: int = 0
    executor: str = "thread"
    shard_owned: tuple[int, ...] = ()
    workers: ProcPoolStats | None = None

    def endpoint(self, name: str) -> EndpointStats:
        """Stats for one cluster endpoint.

        Raises:
            KeyError: If the endpoint never existed on the cluster.
        """
        for stats in self.endpoints:
            if stats.endpoint == name:
                return stats
        raise KeyError(f"unknown endpoint {name!r}")

    @property
    def total_calls(self) -> int:
        """Queries answered across all cluster endpoints."""
        return sum(stats.calls for stats in self.endpoints)

    @property
    def total_errors(self) -> int:
        """Requests that raised (shed ones included), across endpoints."""
        return sum(stats.error_total for stats in self.endpoints)

    @property
    def imbalance(self) -> float:
        """Hottest shard's sub-request load over the mean (1.0 = even).

        The figure of merit for the hash placement: with CRC32 placement
        it should sit near 1.0; a value of ``n_shards`` means one shard
        is taking all the traffic.
        """
        total = sum(self.shard_calls)
        if not total:
            return 1.0
        mean = total / len(self.shard_calls)
        return max(self.shard_calls) / mean

    @property
    def ownership_imbalance(self) -> float:
        """Hottest shard's *owned* node count over the coldest's.

        ``inf``-safe by construction: an unlucky hash split can leave a
        shard owning zero partitioned nodes, and a ratio report must
        degrade to ``float("inf")`` — never divide by zero.  A cluster
        with no partitioned nodes at all (or no census) reports 1.0.
        """
        if not self.shard_owned:
            return 1.0
        low = min(self.shard_owned)
        high = max(self.shard_owned)
        if high == 0:
            return 1.0
        if low == 0:
            return float("inf")
        return high / low

    def format_table(self, title: str = "cluster stats") -> str:
        """Human-readable cluster report for benches and examples."""
        coalescer = self.coalescer
        admission = self.admission
        lines = [
            title,
            f"  shards: {self.n_shards} · store: {self.nodes} nodes / "
            f"{self.relations} relations",
            f"  cache: {self.cache_entries}/{self.cache_capacity} "
            f"entries, {self.cache_evictions} evictions",
            f"  coalescer: {coalescer.flights} flights / "
            f"{coalescer.joined} joined "
            f"(mean batch {coalescer.mean_batch:.2f}, "
            f"max {coalescer.max_batch}, "
            f"window {coalescer.window_seconds * 1e3:.1f}ms)",
            f"  admission: {admission.admitted} admitted, "
            f"{admission.shed_total} shed "
            f"({admission.shed_rate * 100:.1f}%), "
            f"queue-wait p50 {admission.queue_wait_p50_ms:.4f}ms / "
            f"p99 {admission.queue_wait_p99_ms:.4f}ms",
        ]
        if admission.shed:
            reasons = ", ".join(
                f"{reason} x{count}" for reason, count in admission.shed
            )
            lines.append(f"  shed: {reasons}")
        calls = ", ".join(str(count) for count in self.shard_calls)
        lines.append(f"  shard calls: [{calls}] (imbalance {self.imbalance:.2f})")
        if self.shard_owned:
            owned = ", ".join(str(count) for count in self.shard_owned)
            lines.append(
                f"  shard owned: [{owned}] "
                f"(ownership imbalance {self.ownership_imbalance:.2f})"
            )
        if self.workers is not None:
            for worker in self.workers.workers:
                state = "up" if worker.alive else "DOWN"
                lines.append(
                    f"  worker shard{worker.shard}: pid {worker.pid} {state}, "
                    f"{worker.restarts} restarts, {worker.calls} rpcs, "
                    f"rtt p50 {worker.rtt_p50_ms:.3f}ms / "
                    f"p99 {worker.rtt_p99_ms:.3f}ms"
                )
        lines += endpoint_table(self.endpoints)
        return "\n".join(lines)


class AliCoCoCluster:
    """Scatter-gather cluster over hash-sharded :class:`AliCoCoService`\\ s.

    Same endpoint surface and answers as a single service over the same
    store (see the module docstring for the exact bit-identity
    contract), plus request coalescing on the reranked endpoints and
    admission control with typed load shedding on everything computed.

    Thread-safe exactly like the single service: shard stores and
    indexes are frozen, and the cache / metrics / coalescer / admission
    controller each guard themselves.

    Args:
        store: The global net; frozen in place and hash-split into
            ``config.n_shards`` shard stores.
        config: Cluster-tier knobs (sharding, coalescing, admission).
        service_config: Per-shard serving knobs (retriever mode, pool
            sizes, caches); every shard gets the same config.
        search_index: A fitted *global* concept index to reuse; fitted
            from the store when omitted.  Shards always serve
            projections of this index, never their own fits.
        shard_search_indexes: Pre-projected per-shard concept indexes
            (snapshot warm start); derived from the global index when
            omitted.
        tagger / reranker: Trained models, shared read-only by every
            shard service.
        shard_dense_states: Per-shard dense index states to warm-start
            from, ``{shard id: {index name: state}}``.
        config_fingerprint: Build-config digest embedded in snapshots.

    Raises:
        ConfigError: Propagated from the shard services (e.g. dense
            retrieval without a vector-capable reranker) or from invalid
            cluster knobs.
    """

    def __init__(
        self,
        store: AliCoCoStore,
        *,
        config: ClusterConfig | None = None,
        service_config: ServiceConfig | None = None,
        search_index: BM25Index | None = None,
        shard_search_indexes: Sequence[BM25Index | None] | None = None,
        tagger: ConceptTagger | None = None,
        reranker: Module | None = None,
        shard_dense_states: dict[int, dict[str, Any]] | None = None,
        config_fingerprint: str = "",
    ):
        self.config = config or ClusterConfig()
        self._service_config = service_config or ServiceConfig()
        n_shards = self.config.n_shards
        # A cluster over a generational store serves its *published*
        # view and advances through publish() (see the module
        # docstring); one over a plain store is frozen at generation 0
        # forever.  Either way, all serving state — shard placement,
        # index projections, tie-break orders — derives from one
        # consistent pinned view, bundled in a ClusterGeneration.  The
        # generation id prefixes the cluster cache's keys, so entries
        # from different generations can never alias.
        if isinstance(store, GenerationalStore):
            self._source: GenerationalStore | None = store
            view = store.current()
        else:
            self._source = None
            view = store.freeze()
        self._fingerprint = config_fingerprint
        search_index = (
            search_index if search_index is not None else fit_concept_index(view)
        )
        if shard_search_indexes is None:
            shard_search_indexes = split_concept_index(search_index, n_shards)
        elif len(shard_search_indexes) != n_shards:
            raise ConfigError(
                f"expected {n_shards} shard search indexes, "
                f"got {len(shard_search_indexes)}"
            )
        dense_states = shard_dense_states or {}
        initial_generation = view.generation_id if self._source is not None else 0
        self._pool: ProcessShardPool | None = None
        self._worker_dir: Path | None = None
        self._owns_worker_dir = False
        if self.config.executor == "process":
            # The parent holds no shard services: it prepares the models
            # itself (query-side encodings and snapshot bundles), writes
            # one bootstrap snapshot per shard store, and spawns a worker
            # process over each.  Workers rebuild dense indexes from the
            # snapshot-replayed stores (insertion order preserved, fits
            # deterministic) unless warm-start states are embedded — so
            # their answers are bit-identical to in-process shards.
            self._services: list[AliCoCoService] = []
            self._tagger = (
                prepare_serving_module(tagger, TAGGER_MODEL)
                if tagger is not None
                else None
            )
            self._reranker = (
                prepare_serving_module(reranker, RERANKER_MODEL)
                if reranker is not None
                else None
            )
            if self._service_config.retriever != "bm25":
                require_dense_capable(
                    self._reranker, f"retriever {self._service_config.retriever!r}"
                )
            self._worker_dir = snapshot_dir_for(self.config.worker_dir)
            self._owns_worker_dir = self.config.worker_dir is None
            try:
                specs = []
                for shard, shard_store in enumerate(split_store(view, n_shards)):
                    path = self._worker_dir / f"shard-{shard}.snap"
                    save_shard_snapshot(
                        path,
                        shard_store,
                        search_index=shard_search_indexes[shard],
                        dense_states=dense_states.get(shard),
                        config_fingerprint=config_fingerprint,
                    )
                    specs.append(
                        ShardWorkerSpec(
                            shard_id=shard,
                            snapshot_path=str(path),
                            service_config=self._service_config,
                            tagger=tagger,
                            reranker=reranker,
                            generational=self._source is not None,
                            cluster_generation_id=initial_generation,
                        )
                    )
                self._pool = ProcessShardPool(
                    specs,
                    max_restarts=self.config.max_worker_restarts,
                    reservoir_capacity=self.config.reservoir_capacity,
                    seed=self.config.seed,
                )
            except BaseException:
                self._cleanup_worker_dir()
                raise
            shard_gens: tuple[ServingGeneration, ...] = ()
            dense_presence = self._pool.dense_presence()
        else:
            # Shards of an advancing cluster get generational stores of
            # their own, so publish() can grow them behind their readers;
            # frozen clusters keep the historical frozen shard stores.
            self._services = [
                AliCoCoService(
                    (
                        GenerationalStore(shard_store)
                        if self._source is not None
                        else shard_store
                    ),
                    config=self._service_config,
                    search_index=shard_search_indexes[shard],
                    fit_search_index=False,
                    tagger=tagger,
                    reranker=reranker,
                    dense_index_states=dense_states.get(shard),
                    config_fingerprint=config_fingerprint,
                )
                for shard, shard_store in enumerate(split_store(view, n_shards))
            ]
            # The prepared (fitted-checked, eval-mode) modules; shared by
            # every shard, referenced here for query-side encodings.
            self._tagger = self._services[0]._tagger
            self._reranker = self._services[0]._reranker
            shard_gens = tuple(service._gen for service in self._services)
            dense_presence = ()
        self._publish_lock = threading.Lock()
        self._shard_owned = tuple(shard_sizes(view, n_shards))
        self._cgen = ClusterGeneration(
            generation_id=initial_generation,
            store=view,
            search_index=search_index,
            shard_search_indexes=tuple(shard_search_indexes),
            # Global tie-break orders for scatter merges: BM25 breaks
            # score ties by fit position, the dense backends by fit
            # position over the store walk — both are subsequences of
            # these maps, so the relative order (all a tie-break needs)
            # is preserved.
            concept_position=self._positions_of(search_index),
            item_position={
                node.id: position
                for position, node in enumerate(view.nodes(ITEM_PREFIX))
            },
            shards=shard_gens,
            node_count=len(view),
            relation_count=view.stats().relations_total,
            concept_count=view.count_nodes(ECOMMERCE_PREFIX),
            dense_presence=dense_presence,
        )
        self._cache = (
            LRUCache(self.config.cache_capacity)
            if self.config.cache_capacity
            else None
        )
        self._coalescer = Coalescer(
            window_seconds=self.config.coalesce_window_ms / 1e3
        )
        self._admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue_depth,
            self.config.max_queue_wait_ms / 1e3,
            reservoir_capacity=self.config.reservoir_capacity,
            seed=self.config.seed + 101,
        )
        self._shard_calls = [0] * n_shards
        self._balance_lock = threading.Lock()
        self._fanout = (
            ThreadPoolExecutor(max_workers=self.config.fanout_workers)
            if self.config.fanout_workers
            else None
        )
        self._handlers: dict[str, Callable[..., Any]] = {
            "items_for_concept": self.items_for_concept,
            "concepts_for_item": self.concepts_for_item,
            "interpretation": self.interpretation,
            "hypernyms": self.hypernyms,
            "search": self.search,
            "tag": self.tag,
            "items_for_concept_reranked": self.items_for_concept_reranked,
            "search_reranked": self.search_reranked,
        }
        self._metrics = {}
        for position, endpoint in enumerate(self._handlers):
            self._metrics[endpoint] = EndpointMetrics(
                self.config.reservoir_capacity,
                seed=self.config.seed + position,
            )

    # ------------------------------------------------------------ warm start
    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        *,
        config: ClusterConfig | None = None,
        service_config: ServiceConfig | None = None,
        tagger: ConceptTagger | None = None,
        reranker: Module | None = None,
        expected_fingerprint: str | None = None,
    ) -> "AliCoCoCluster":
        """Warm-start a cluster from one snapshot file.

        A snapshot written by :meth:`save_snapshot` with the *same* shard
        count rehydrates every per-shard index (BM25 projections and
        dense indexes) without re-fitting; any other snapshot — a
        single-service one, or a cluster one with a different shard
        count — re-splits deterministically from the global store and
        index, landing on identical placement.  Model bundles restore
        exactly as in :meth:`AliCoCoService.from_snapshot`.

        Raises:
            DataError: If the snapshot is malformed, fingerprint-
                mismatched, or a requested model bundle is absent or
                invalid.
        """
        config = config or ClusterConfig()
        snapshot = load_snapshot(path)
        header = snapshot.header
        if (
            expected_fingerprint is not None
            and header.config_fingerprint != expected_fingerprint
        ):
            raise DataError(
                f"snapshot fingerprint {header.config_fingerprint!r} does "
                f"not match expected {expected_fingerprint!r}"
            )
        # A generational snapshot replays into a generational store so
        # the cluster pins the saved generation (id included — it keys
        # the cluster cache).  A compacted store may carry zero delta
        # records but a folded generation in the header — still
        # generational.  Delta-less generation-0 snapshots serve frozen.
        store: AliCoCoStore | GenerationalStore = (
            generational_store_from_snapshot(snapshot)
            if snapshot.deltas or header.base_generation > 0
            else snapshot.store
        )
        state = snapshot.index_states.get(CONCEPT_INDEX)
        search_index = (
            BM25Index.from_state(state)
            if state is not None
            else fit_concept_index(store)
        )
        meta = snapshot.index_states.get(CLUSTER_META)
        shard_search_indexes = None
        shard_dense_states: dict[int, dict[str, Any]] = {}
        if isinstance(meta, dict) and meta.get("n_shards") == config.n_shards:
            shard_search_indexes = []
            for shard in range(config.n_shards):
                state = snapshot.index_states.get(f"{CONCEPT_INDEX}@shard{shard}")
                shard_search_indexes.append(
                    BM25Index.from_state(state) if state is not None else None
                )
                dense = {
                    name: snapshot.index_states[f"{name}@shard{shard}"]
                    for name in (DENSE_CONCEPT_INDEX, DENSE_ITEM_INDEX)
                    if f"{name}@shard{shard}" in snapshot.index_states
                }
                if dense:
                    shard_dense_states[shard] = dense
        for name, module in ((TAGGER_MODEL, tagger), (RERANKER_MODEL, reranker)):
            if module is None:
                continue
            bundle = snapshot.model_states.get(name)
            if bundle is None:
                bundled = ", ".join(sorted(snapshot.model_states)) or "none"
                raise DataError(
                    f"snapshot carries no {name!r} model bundle "
                    f"(bundled models: {bundled})"
                )
            kind = TAGGER_KIND if name == TAGGER_MODEL else RERANKER_KIND
            restore_serving_module(module, bundle, kind, name)
        return cls(
            store,
            config=config,
            service_config=service_config,
            search_index=search_index,
            shard_search_indexes=shard_search_indexes,
            tagger=tagger,
            reranker=reranker,
            shard_dense_states=shard_dense_states or None,
            config_fingerprint=header.config_fingerprint,
        )

    def save_snapshot(self, path: str | Path) -> int:
        """Persist the cluster as one ordinary snapshot file.

        The global store, global concept index and model bundles are
        written exactly as a single service would write them — so a
        plain :meth:`AliCoCoService.from_snapshot` can serve a cluster
        snapshot — plus one ``…@shard{i}`` index state per shard index
        and a ``cluster`` meta record pinning the shard count for
        warm-start validation.  A cluster over a generational store
        writes the source's generation structure (sealed delta segments
        and their numbering), so a reload resumes at the saved
        generation and can keep advancing.  Per-shard index states are
        embedded only when the served bundle is aligned with the
        source's published generation (i.e. after a :meth:`publish`);
        otherwise the reload re-splits deterministically.

        Returns:
            Number of lines written.
        """
        cgen = self._cgen
        index_states: dict[str, Any] = {CLUSTER_META: {"n_shards": self.n_shards}}
        if cgen.search_index is not None:
            index_states[CONCEPT_INDEX] = cgen.search_index.to_state()
        aligned = (
            self._source is None
            or self._source.current().generation_id == cgen.generation_id
        )
        if aligned:
            for shard in range(self.n_shards):
                projection = cgen.shard_search_indexes[shard]
                if projection is not None:
                    index_states[f"{CONCEPT_INDEX}@shard{shard}"] = (
                        projection.to_state()
                    )
                for name, state in self._shard_dense_states(shard, cgen).items():
                    index_states[f"{name}@shard{shard}"] = state
        model_states = {}
        if self._tagger is not None:
            model_states[TAGGER_MODEL] = model_bundle_state(self._tagger, TAGGER_KIND)
        if self._reranker is not None:
            model_states[RERANKER_MODEL] = model_bundle_state(
                self._reranker, RERANKER_KIND
            )
        saver = save_snapshot if self._source is None else save_generations
        return saver(
            cgen.store if self._source is None else self._source,
            path,
            config_fingerprint=self._fingerprint,
            index_states=index_states,
            model_states=model_states,
        )

    # ----------------------------------------------------------- generations
    def publish(self) -> int:
        """Seal source-store writes and advance every shard, two-phase.

        **Phase one** (invisible to readers): seals and swaps the source
        :class:`~repro.kg.generations.GenerationalStore`, slices the
        rows beyond the served bundle's covered counts — count slicing,
        so a source-store compaction between publishes changes nothing —
        and routes them into the shards' own generational stores: nodes
        by :func:`~repro.serving.shard.shard_of` (replicated layers to
        every shard), each relation to its owner shards in global
        insertion order, missing endpoints added as ghost replicas.  The
        global concept index is extended (clone + add, refit fallback),
        fresh per-shard projections are derived from it, and each grown
        shard publishes its next generation with its new projection.

        **Phase two**: one attribute assignment installs the new
        :class:`ClusterGeneration`.  Scattered reads pin the bundle at
        entry, so a fan-out sees all-old or all-new shard state — never
        a blend spanning two generations.  Routed reads touch a single
        shard, whose own publish is equally atomic.

        A publish with nothing staged and nothing open is a no-op that
        returns the current generation id.

        Returns:
            The cluster generation id now being served.

        Raises:
            ConfigError: If the cluster serves a plain frozen store.
        """
        if self._source is None:
            raise ConfigError(
                "publish() needs a cluster over a GenerationalStore; this "
                "cluster serves a frozen store (generation 0 forever)"
            )
        with self._publish_lock:
            old = self._cgen
            generation_id = self._source.publish()
            if generation_id == old.generation_id:
                return generation_id
            view = self._source.current()
            # Phase one — route the delta to the shards (their open
            # deltas; readers still see the old shard generations).  The
            # delta is built as one op list per shard, each in global
            # insertion order — fresh nodes first, then each relation
            # behind ghost replicas of its endpoints — and either applied
            # to the in-process shard stores or shipped to the workers
            # over RPC, byte-for-byte the same sequence either way.
            fresh_nodes = list(islice(view.nodes(), old.node_count, None))
            fresh_relations = list(
                islice(view.relations(), old.relation_count, None)
            )
            shard_ops: list[list[tuple[str, Any]]] = [
                [] for _ in range(self.n_shards)
            ]
            for node in fresh_nodes:
                if is_partitioned(node.id):
                    shard_ops[shard_of(node.id, self.n_shards)].append(
                        ("node", node)
                    )
                else:
                    for ops in shard_ops:
                        ops.append(("node", node))
            for relation in fresh_relations:
                for home in owner_shards(relation, self.n_shards):
                    ops = shard_ops[home]
                    for endpoint in (relation.source, relation.target):
                        ops.append(("ghost", view.get(endpoint)))
                    ops.append(("relation", relation))
            search_index = self._next_global_index(old, view)
            projections = split_concept_index(search_index, self.n_shards)
            item_position = dict(old.item_position)
            for node in fresh_nodes:
                if layer_of(node.id) == ITEM_PREFIX:
                    item_position[node.id] = len(item_position)
            # A shard without a delta no-ops its publish and keeps its
            # old bundle — correct for its store and dense indexes (both
            # unchanged), while its *lexical* arm always comes from the
            # fresh projections below (global corpus statistics moved
            # even if the shard's own documents did not).
            if self._pool is not None:
                for shard, ops in enumerate(shard_ops):
                    projection = projections[shard]
                    self._pool.apply_delta(
                        shard,
                        generation_id,
                        ops,
                        projection.to_state() if projection is not None else None,
                    )
                shard_gens: tuple[ServingGeneration, ...] = ()
                dense_presence = self._pool.dense_presence()
            else:
                for service, ops, projection in zip(
                    self._services, shard_ops, projections
                ):
                    shard_store = service.store
                    for kind, payload in ops:
                        if kind == "node":
                            shard_store.add_node(payload)
                        elif kind == "ghost":
                            try:
                                shard_store.add_node(payload)
                            except DuplicateNodeError:
                                pass
                        else:
                            shard_store.add_relation(payload)
                    service.publish(search_index=projection)
                shard_gens = tuple(service._gen for service in self._services)
                dense_presence = ()
            self._shard_owned = tuple(shard_sizes(view, self.n_shards))
            # Phase two — a single assignment installs the whole bundle.
            self._cgen = ClusterGeneration(
                generation_id=generation_id,
                store=view,
                search_index=search_index,
                shard_search_indexes=tuple(projections),
                concept_position=self._positions_of(search_index),
                item_position=item_position,
                shards=shard_gens,
                node_count=len(view),
                relation_count=view.stats().relations_total,
                concept_count=view.count_nodes(ECOMMERCE_PREFIX),
                dense_presence=dense_presence,
            )
            if self._cache is not None:
                self._cache.begin_generation(f"gen-{generation_id}")
            return generation_id

    def _next_global_index(
        self, old: ClusterGeneration, view: Any
    ) -> BM25Index | None:
        """The next generation's global concept index (clone + add).

        Mirrors :meth:`AliCoCoService._next_search_index`: the old index
        is cloned through its serialised state and extended — exactly
        refit-identical — with a full refit as the fallback for states
        predating raw-length persistence.
        """
        fresh = [
            node
            for node in islice(
                view.nodes(ECOMMERCE_PREFIX), old.concept_count, None
            )
            if node.tokens
        ]
        if not fresh:
            return old.search_index
        if old.search_index is None:
            return fit_concept_index(view)
        try:
            clone = BM25Index.from_state(old.search_index.to_state())
            clone.add_documents({node.id: list(node.tokens) for node in fresh})
            return clone
        except DataError:
            return fit_concept_index(view)

    @staticmethod
    def _positions_of(index: BM25Index | None) -> dict[str, int]:
        """Doc id -> global fit position over an index's document walk."""
        if index is None:
            return {}
        return {
            doc_id: position
            for position, doc_id in enumerate(index.to_state()["doc_ids"])
        }

    # ------------------------------------------------------------- endpoints
    def items_for_concept(self, concept_id: str, top_k: int | None = None) -> tuple:
        """Best items for a concept, answered by its owner shard."""
        with self._metered_errors("items_for_concept"):
            cgen = self._cgen
            shard = self._shard_for(concept_id)
            self._count_calls((shard,))
            return self._serve(
                "items_for_concept",
                (concept_id, top_k),
                lambda: self._routed(shard, "items_for_concept", concept_id, top_k),
                cgen,
            )

    def concepts_for_item(self, item_id: str) -> tuple:
        """Concepts an item participates in, from the item's owner shard."""
        with self._metered_errors("concepts_for_item"):
            cgen = self._cgen
            shard = self._shard_for(item_id)
            self._count_calls((shard,))
            return self._serve(
                "concepts_for_item",
                (item_id,),
                lambda: self._routed(shard, "concepts_for_item", item_id),
                cgen,
            )

    def interpretation(self, concept_id: str) -> tuple:
        """Primitive senses of a concept, from its owner shard."""
        with self._metered_errors("interpretation"):
            cgen = self._cgen
            shard = self._shard_for(concept_id)
            self._count_calls((shard,))
            return self._serve(
                "interpretation",
                (concept_id,),
                lambda: self._routed(shard, "interpretation", concept_id),
                cgen,
            )

    def hypernyms(self, primitive_id: str, transitive: bool = False) -> tuple:
        """Hypernym expansion; the taxonomy is replicated, shard 0 answers."""
        with self._metered_errors("hypernyms"):
            cgen = self._cgen
            shard = self._shard_for(primitive_id)
            self._count_calls((shard,))
            return self._serve(
                "hypernyms",
                (primitive_id, transitive),
                lambda: self._routed(shard, "hypernyms", primitive_id, transitive),
                cgen,
            )

    def search(self, text: str, k: int | None = None) -> tuple:
        """Text -> concepts, scattered to every shard and merged globally."""
        with self._metered_errors("search"):
            if k is not None and k <= 0:
                raise ConfigError(f"search k must be positive, got {k}")
            k = k if k is not None else self._service_config.search_top_k
            tokens = tuple(text.split())
            cgen = self._cgen
            return self._serve(
                "search",
                (tokens, k),
                lambda: self._search_scattered(tokens, k, cgen),
                cgen,
            )

    def tag(self, text: str) -> tuple:
        """Concept tagging; the model and primitive layer are replicated."""
        with self._metered_errors("tag"):
            cgen = self._cgen
            self._count_calls((0,))
            tokens = tuple(text.split())
            return self._serve(
                "tag", (tokens,), lambda: self._routed(0, "tag", text), cgen
            )

    def items_for_concept_reranked(
        self, concept_id: str, top_k: int | None = None
    ) -> tuple:
        """Reranked items: pool gathered globally, scored on owner shards.

        Coalesced: concurrent identical requests share one computation.
        """
        with self._metered_errors("items_for_concept_reranked"):
            self._require_reranker("items_for_concept_reranked")
            if top_k is not None and top_k <= 0:
                raise ConfigError(
                    f"items_for_concept_reranked top_k must be positive, got {top_k}"
                )
            cgen = self._cgen
            shard = self._shard_for(concept_id)
            self._count_calls((shard,))
            # The existence/layer precheck happens parent-side either
            # way: against the owner shard's pinned store (thread) or
            # the pinned global view (process) — the shard owns exactly
            # the global view's nodes, so the errors are identical.
            if self._pool is not None:
                require_layer(cgen.store, concept_id, ECOMMERCE_PREFIX)
            else:
                self._services[shard]._require(
                    concept_id, ECOMMERCE_PREFIX, store=cgen.shards[shard].store
                )
            return self._serve(
                "items_for_concept_reranked",
                (concept_id, top_k),
                lambda: self._items_reranked_scattered(
                    shard, concept_id, top_k, cgen
                ),
                cgen,
            )

    def search_reranked(self, text: str, k: int | None = None) -> tuple:
        """Reranked search: pool gathered globally, scored on owner shards.

        Coalesced: concurrent identical requests share one computation.
        """
        with self._metered_errors("search_reranked"):
            self._require_reranker("search_reranked")
            if k is not None and k <= 0:
                raise ConfigError(f"search_reranked k must be positive, got {k}")
            k = k if k is not None else self._service_config.search_top_k
            tokens = tuple(text.split())
            cgen = self._cgen
            return self._serve(
                "search_reranked",
                (tokens, k),
                lambda: self._search_reranked_scattered(tokens, k, cgen),
                cgen,
            )

    def batch(
        self,
        requests: Iterable[Sequence],
        *,
        on_error: str = "raise",
        workers: int | None = None,
    ) -> list:
        """Answer many queries in one call; same contract as the service.

        In envelope mode a shed sub-query comes back as a
        :class:`~repro.serving.BatchResult` with ``error_type ==
        "OverloadedError"`` — ``unwrap()`` re-raises it as the original
        type, so callers can retry just the shed requests.

        Raises:
            ConfigError: On an unknown endpoint (``"raise"`` mode), an
                unknown ``on_error`` policy, or non-positive ``workers``.
        """
        if on_error not in _ON_ERROR_MODES:
            expected = ", ".join(repr(mode) for mode in _ON_ERROR_MODES)
            raise ConfigError(
                f"unknown on_error policy {on_error!r}; expected one of: {expected}"
            )
        if workers is not None and workers <= 0:
            raise ConfigError(f"batch workers must be positive, got {workers}")
        run = self._run_one if on_error == "raise" else self._run_enveloped
        requests = list(requests)
        if workers is None or workers == 1 or len(requests) <= 1:
            return [run(request) for request in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run, request) for request in requests]
            return [future.result() for future in futures]

    def _run_one(self, request: Sequence) -> Any:
        endpoint, *args = request
        handler = self._handlers.get(endpoint)
        if handler is None:
            known = ", ".join(sorted(self._handlers))
            raise ConfigError(
                f"unknown endpoint {endpoint!r}; expected one of: {known}"
            )
        return handler(*args)

    def _run_enveloped(self, request: Sequence) -> BatchResult:
        try:
            return BatchResult(ok=True, value=self._run_one(request))
        except Exception as error:
            return BatchResult(
                ok=False,
                error_type=type(error).__name__,
                error_message=str(error),
            )

    # --------------------------------------------------------- introspection
    @property
    def n_shards(self) -> int:
        """Number of shard services."""
        return self.config.n_shards

    @property
    def store(self) -> AliCoCoStore:
        """The served global view (the frozen store, or the pinned
        generation view of an advancing cluster)."""
        return self._cgen.store

    @property
    def source(self) -> GenerationalStore | None:
        """The growable source store behind an advancing cluster.

        Grow it through its ``create_*``/``add_*`` API and call
        :meth:`publish` to advance every shard; ``None`` for a cluster
        over a plain frozen store.
        """
        return self._source

    @property
    def generation_id(self) -> int:
        """The cluster generation currently being served (0 when frozen)."""
        return self._cgen.generation_id

    @property
    def services(self) -> tuple[AliCoCoService, ...]:
        """The in-process shard services, in shard order (empty under
        the process executor — shard state lives in the workers)."""
        return tuple(self._services)

    @property
    def worker_pool(self) -> ProcessShardPool | None:
        """The process executor's worker pool (``None`` under threads).

        Exposed for health checks (``ping_all``), worker stats, and
        crash-recovery tests that kill a live worker process.
        """
        return self._pool

    @property
    def endpoints(self) -> tuple[str, ...]:
        """Names accepted by :meth:`batch`."""
        return tuple(self._handlers)

    @property
    def models(self) -> tuple[str, ...]:
        """Bundle names of the models the cluster is serving."""
        if self._services:
            return self._services[0].models
        names = []
        if self._tagger is not None:
            names.append(TAGGER_MODEL)
        if self._reranker is not None:
            names.append(RERANKER_MODEL)
        return tuple(names)

    def stats(self) -> ClusterStats:
        """Current cluster statistics (fan-out, coalescing, admission).

        Cache counters come from one locked
        :meth:`~repro.serving.cache.LRUCache.counters` snapshot, never
        from separate attribute reads that a concurrent request could
        tear apart.
        """
        cgen = self._cgen
        with self._balance_lock:
            shard_calls = tuple(self._shard_calls)
        cache_counters = self._cache.counters() if self._cache else CacheCounters()
        if self._pool is not None:
            shard_stats = []
            for shard in range(self.n_shards):
                try:
                    shard_stats.append(self._pool.call(shard, "stats"))
                except ShardUnavailableError:
                    continue
            workers = self._pool.stats()
        else:
            shard_stats = [service.stats() for service in self._services]
            workers = None
        return ClusterStats(
            n_shards=self.n_shards,
            nodes=cgen.node_count,
            relations=cgen.relation_count,
            cache_entries=len(self._cache) if self._cache else 0,
            cache_capacity=self._cache.capacity if self._cache else 0,
            cache_evictions=cache_counters.evictions,
            endpoints=tuple(
                metrics.snapshot(endpoint)
                for endpoint, metrics in self._metrics.items()
            ),
            coalescer=self._coalescer.stats(),
            admission=self._admission.stats(),
            shard_calls=shard_calls,
            shards=tuple(shard_stats),
            generation_id=cgen.generation_id,
            executor=self.config.executor,
            shard_owned=self._shard_owned,
            workers=workers,
        )

    def close(self) -> None:
        """Shut down the executors (fan-out threads and worker processes).

        Under the process executor this joins every worker process and
        removes the private bootstrap-snapshot directory — after close
        the cluster leaves no child processes behind.
        """
        if self._fanout is not None:
            self._fanout.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()
        self._cleanup_worker_dir()

    def _cleanup_worker_dir(self) -> None:
        if self._owns_worker_dir and self._worker_dir is not None:
            shutil.rmtree(self._worker_dir, ignore_errors=True)
            self._owns_worker_dir = False

    def __enter__(self) -> "AliCoCoCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _shard_for(self, node_id: str) -> int:
        """The shard answering point queries for ``node_id``.

        Partitioned ids go to their hash owner; replicated-layer ids (and
        malformed ids, which no shard can know — the owner's store raises
        the same ``NodeNotFoundError`` the monolithic service would) go
        to shard 0.
        """
        try:
            partitioned = is_partitioned(node_id)
        except ValueError:
            partitioned = False
        return shard_of(node_id, self.n_shards) if partitioned else 0

    def _count_calls(self, shards: Iterable[int]) -> None:
        """Charge one sub-request to each listed shard's balance counter."""
        with self._balance_lock:
            for shard in shards:
                self._shard_calls[shard] += 1

    def _count_shard(self, shard: int) -> AliCoCoService:
        self._count_calls((shard,))
        return self._services[shard]

    def _routed(self, shard: int, endpoint: str, *args: Any) -> Any:
        """Answer one routed endpoint call on its owner shard.

        Dispatches in-process (thread executor) or as one RPC round-trip
        (process executor); the caller has already charged the shard's
        balance counter.
        """
        if self._pool is not None:
            return self._pool.call(shard, endpoint, *args)
        return getattr(self._services[shard], endpoint)(*args)

    def _scatter(self, call: Callable[[int, AliCoCoService], Any]) -> list:
        """Run ``call(shard, service)`` against every shard, in order."""
        self._count_calls(range(self.n_shards))
        if self._fanout is None:
            return [
                call(shard, service)
                for shard, service in enumerate(self._services)
            ]
        return list(
            self._fanout.map(call, range(self.n_shards), self._services)
        )

    def _arm_scatter(self, method: str, args: tuple) -> list:
        """Scatter one generation-pinned arm request to every worker.

        One pipelined round-trip per shard — every worker computes its
        arm concurrently (:meth:`ProcessShardPool.scatter`).  Returns
        the per-shard results in shard order.
        """
        self._count_calls(range(self.n_shards))
        results = self._pool.scatter(
            {shard: (method, args) for shard in range(self.n_shards)}
        )
        return [results[shard] for shard in range(self.n_shards)]

    def _shard_dense_states(self, shard: int, cgen: ClusterGeneration) -> dict:
        """One shard's dense index states, local or fetched over RPC."""
        if self._pool is None:
            return {
                name: dense_index.to_state()
                for name, dense_index in cgen.shards[shard].dense_indexes.items()
                if dense_index is not None
            }
        try:
            return self._pool.call(shard, "index_states")
        except ShardUnavailableError:
            return {}

    def _require_reranker(self, endpoint: str) -> None:
        require_model(self._reranker, RERANKER_MODEL, endpoint)

    @contextmanager
    def _metered_errors(self, endpoint: str) -> Iterator[None]:
        """Count any failure (shed requests included) against the endpoint."""
        try:
            yield
        except Exception as error:
            self._metrics[endpoint].record_error(type(error).__name__)
            raise

    def _serve(
        self,
        endpoint: str,
        key: tuple,
        compute: Callable[[], Any],
        cgen: ClusterGeneration | None = None,
    ) -> Any:
        """Cache -> coalesce -> admission -> compute, in that order.

        The cache sits first so a hot repeat never costs a slot; the
        coalescer sits *outside* admission so N concurrent duplicates
        consume one slot (a leader is always admitted-or-shed, never
        blocked on its own joiners — no deadlock by construction).
        Joiners count as cache misses: their latency includes the wait
        for the leader, which is exactly what a caller observed.
        """
        metrics = self._metrics[endpoint]
        start = perf_counter()
        # Advancing clusters prefix cache keys with the pinned bundle's
        # generation id: a publish retires the old generation's entries
        # by making them unreachable (the single service's convention).
        if self._source is not None:
            cgen = cgen if cgen is not None else self._cgen
            cache_key = ("gen", cgen.generation_id, endpoint, *key)
        else:
            cache_key = (endpoint, *key)
        if self._cache is not None:
            cached = self._cache.get(cache_key, _MISS)
            if cached is not _MISS:
                metrics.record_hit(perf_counter() - start)
                return cached

        def admitted() -> Any:
            with self._admission.admit():
                return compute()

        if endpoint in COALESCED_ENDPOINTS:
            value = self._coalescer.submit(cache_key, admitted)
        else:
            value = admitted()
        if self._cache is not None:
            self._cache.put(cache_key, value)
        metrics.record_miss(perf_counter() - start)
        return value

    # ----------------------------------------------------- scattered queries
    # Every scattered computation receives the pinned ClusterGeneration
    # and reads shard stores, indexes and position maps only from it —
    # a concurrent publish() can therefore never hand one fan-out a mix
    # of two generations.
    def _search_scattered(
        self, tokens: tuple[str, ...], k: int, cgen: ClusterGeneration
    ) -> tuple:
        """Global BM25 ranking from per-shard projections (bit-identical)."""
        if not tokens or cgen.search_index is None:
            return ()
        if self._pool is not None:
            arms = self._arm_scatter("search_arm", (cgen.generation_id, tokens, k))
        else:
            arms = self._scatter(
                lambda shard, service: service._search_uncached(
                    tokens, k, index=cgen.shard_search_indexes[shard]
                )
            )
        return merge_ranked(arms, cgen.concept_position, k)

    @staticmethod
    def _has_dense(name: str, cgen: ClusterGeneration) -> bool:
        if cgen.shards:
            return any(
                shard_gen.dense_indexes.get(name) is not None
                for shard_gen in cgen.shards
            )
        return name in cgen.dense_presence

    def _concept_pool_scattered(
        self, tokens: tuple[str, ...], k: int, cgen: ClusterGeneration
    ) -> tuple:
        """The cluster's version of ``AliCoCoService._concept_pool``."""
        mode = self._service_config.retriever
        if (
            mode == "bm25"
            or not self._has_dense(DENSE_CONCEPT_INDEX, cgen)
            or not tokens
        ):
            return self._search_scattered(tokens, k, cgen)
        vector = dense_query_vector(self._reranker, tokens)
        if self._pool is not None:
            arms = self._arm_scatter(
                "dense_arm", (cgen.generation_id, DENSE_CONCEPT_INDEX, vector, k)
            )
        else:
            arms = self._scatter(
                lambda shard, service: service._dense_arm(
                    DENSE_CONCEPT_INDEX, vector, k,
                    indexes=cgen.shards[shard].dense_indexes,
                )
            )
        dense = merge_ranked(arms, cgen.concept_position, k)
        if mode == "dense":
            return dense
        lexical = self._search_scattered(tokens, k, cgen)
        return tuple(
            rrf_fuse(
                [list(dense), list(lexical)],
                k=self._service_config.rrf_k,
                weights=self._service_config.hybrid_weights,
            )[:k]
        )

    def _item_pool_scattered(
        self, shard: int, concept_id: str, k: int, cgen: ClusterGeneration
    ) -> tuple:
        """The cluster's version of ``AliCoCoService._item_pool``.

        The graph arm comes entirely from the concept's owner shard:
        every item->concept edge lives there, in global insertion order,
        so the association ranking is bit-identical.
        """
        if self._pool is not None:
            graph = self._pool.call(
                shard, "items_arm", cgen.generation_id, concept_id, k
            )
            concept_store = cgen.store
        else:
            owner = cgen.shards[shard]
            graph = self._services[shard]._items_uncached(
                concept_id, k, store=owner.store
            )
            concept_store = owner.store
        mode = self._service_config.retriever
        if mode == "bm25" or not self._has_dense(DENSE_ITEM_INDEX, cgen):
            return graph
        tokens = tuple(concept_store.get(concept_id).tokens)
        if not tokens:
            return graph
        vector = dense_query_vector(self._reranker, tokens)
        if self._pool is not None:
            arms = self._arm_scatter(
                "dense_arm", (cgen.generation_id, DENSE_ITEM_INDEX, vector, k)
            )
        else:
            arms = self._scatter(
                lambda arm_shard, service: service._dense_arm(
                    DENSE_ITEM_INDEX, vector, k,
                    indexes=cgen.shards[arm_shard].dense_indexes,
                )
            )
        dense = merge_ranked(arms, cgen.item_position, k)
        if mode == "dense":
            return dense
        return tuple(
            rrf_fuse(
                [list(dense), list(graph)],
                k=self._service_config.rrf_k,
                weights=self._service_config.hybrid_weights,
            )[:k]
        )

    def _score_scattered(
        self,
        query_tokens: tuple[str, ...],
        pool: tuple,
        doc_tokens: Callable[[Any, str], list[str]],
        cgen: ClusterGeneration,
    ) -> list[tuple[str, float]]:
        """Scatter pool scoring to owner shards, merge by ``(-prob, id)``.

        Each candidate is scored on the shard that owns it — through that
        shard's doc-encoding cache — and per-candidate scores are
        pool-composition independent, so the merged ranking equals the
        single-service ``sorted(zip(ids, scores), key=(-score, id))``.

        ``doc_tokens(store, node_id)`` reads candidate text from a pinned
        store: the owner shard's (thread executor) or the global view's
        (process executor) — the split shares node objects, so the texts
        are identical.  Under the process executor the whole request goes
        out as **one batched scatter**: a single round-trip per owner
        shard carries every candidate that shard owns, and the workers
        score their batches concurrently.
        """
        groups: dict[int, list[str]] = {}
        for node_id, _ in pool:
            groups.setdefault(shard_of(node_id, self.n_shards), []).append(node_id)
        scores: dict[str, float] = {}
        if self._pool is not None:
            calls = {}
            for shard in sorted(groups):
                shard_ids = groups[shard]
                texts = [doc_tokens(cgen.store, node_id) for node_id in shard_ids]
                calls[shard] = ("pool_scores", (query_tokens, shard_ids, texts))
            self._count_calls(sorted(groups))
            results = self._pool.scatter(calls)
            for shard, shard_scores in results.items():
                scores.update(zip(groups[shard], shard_scores))
        else:
            for shard in sorted(groups):
                service = self._count_shard(shard)
                shard_ids = groups[shard]
                texts = [
                    doc_tokens(cgen.shards[shard].store, node_id)
                    for node_id in shard_ids
                ]
                shard_scores = service._pool_scores(
                    self._reranker, query_tokens, shard_ids, texts
                )
                scores.update(zip(shard_ids, shard_scores))
        return sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))

    def _items_reranked_scattered(
        self,
        shard: int,
        concept_id: str,
        top_k: int | None,
        cgen: ClusterGeneration,
    ) -> tuple:
        concept_store = cgen.shards[shard].store if cgen.shards else cgen.store
        concept_tokens = tuple(concept_store.get(concept_id).tokens)
        pool = self._item_pool_scattered(
            shard, concept_id, self._service_config.rerank_pool_k, cgen
        )
        scored = self._score_scattered(
            concept_tokens,
            pool,
            lambda store, item_id: store.get(item_id).title.split(),
            cgen,
        )
        if top_k is not None:
            scored = scored[:top_k]
        return tuple(scored)

    def _search_reranked_scattered(
        self, tokens: tuple[str, ...], k: int, cgen: ClusterGeneration
    ) -> tuple:
        pool = self._concept_pool_scattered(
            tokens, self._service_config.rerank_pool_k, cgen
        )
        scored = self._score_scattered(
            tokens,
            pool,
            lambda store, concept_id: list(store.get(concept_id).tokens),
            cgen,
        )
        return tuple(scored[:k])
