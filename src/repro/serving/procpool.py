"""Out-of-process shard workers: the cluster's GIL-escaping executor.

The thread executor in :mod:`repro.serving.cluster` fans scatter calls
out over a ``ThreadPoolExecutor`` — but per-shard work is pure Python,
so every sub-request serializes on the parent's GIL and adding shards
buys almost no throughput.  :class:`ProcessShardPool` moves each shard
into its own **worker process**: scattered sub-requests then compute on
separate interpreters in parallel, and the throughput-vs-shard-count
curve bends upward (``benchmarks/bench_cluster.py`` gates it).

**Lifecycle.**

- *Spawn, not fork*: workers start via the ``multiprocessing`` spawn
  context — a fresh interpreter per shard, no inherited locks or
  arbitrary parent state, identical semantics on every platform.
- *Snapshot bootstrap*: the parent writes one per-shard snapshot file
  (:func:`~repro.serving.service.save_shard_snapshot` — shard store plus
  its projection of the global concept index) and each worker loads
  *its shard only* from disk
  (:func:`~repro.serving.service.shard_service_from_snapshot`).  Live
  stores are never pickled across the spawn boundary; only the (small,
  verified-picklable) trained models ride the spawn args.  The same
  file is the restart image after a crash.
- *Health*: a worker announces readiness with a ``ready`` hello frame
  (boot errors travel back as typed envelopes, not silent hangs) and
  answers ``ping`` round-trips thereafter.
- *Bounded restart*: a broken pipe mid-call triggers at most one
  respawn-and-retry per call, and at most ``max_restarts`` respawns per
  worker over the pool's lifetime.  A respawned worker replays the
  pool's **delta log** (every ``apply_delta`` the shard has
  acknowledged) over its bootstrap snapshot, so it rejoins at the
  exact generation it crashed at — answers after recovery are
  bit-identical.  Budget exhausted means the shard degrades to a typed
  :class:`~repro.errors.ShardUnavailableError`; healthy shards keep
  serving routed traffic.

**Pipelined scatter.**  :meth:`ProcessShardPool.scatter` sends every
shard its request *first* and only then collects responses, holding the
per-shard channel locks (acquired in increasing shard order — no
deadlock against routed calls, which take a single lock).  All workers
therefore compute concurrently; the parent's wall-clock for a fan-out is
the slowest shard plus IPC, not the sum — this is the GIL escape.  One
round-trip carries one whole per-shard batch (e.g. every pool-scoring
candidate the shard owns), never one frame per candidate.

**Generation pinning.**  Scattered requests carry the parent's pinned
cluster generation id; each worker retains its last few published
:class:`~repro.serving.ServingGeneration` bundles keyed by that id, so a
fan-out racing a ``publish()`` reads one whole generation — exactly the
thread executor's contract.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Any, Mapping

from ..errors import (
    ConfigError,
    DataError,
    DuplicateNodeError,
    ShardUnavailableError,
)
from ..matching.bm25 import BM25Index
from .rpc import (
    ShardChannel,
    decode_frame,
    encode_frame,
    error_envelope,
    raise_remote,
    serve_connection,
)
from .service import (
    RERANKER_MODEL,
    AliCoCoService,
    require_model,
    shard_service_from_snapshot,
)

#: Endpoints a worker answers directly through its shard service (the
#: cluster's routed surface; scattered endpoints merge in the parent).
ROUTED_ENDPOINTS = (
    "items_for_concept",
    "concepts_for_item",
    "interpretation",
    "hypernyms",
    "tag",
)

#: Published generations a worker keeps addressable by cluster
#: generation id.  Scatters only ever pin the current bundle (briefly
#: the previous one, mid-publish), so a handful is plenty.
RETAINED_GENERATIONS = 4

#: Pipe failures that mean "the worker is gone", not "the query failed".
_PIPE_ERRORS = (EOFError, OSError)


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Everything a worker process needs to boot one shard.

    The spec crosses the spawn boundary pickled, so it carries only
    small things: the snapshot *path* (never the store), the serving
    config, and the prepared models.

    Attributes:
        shard_id: This worker's shard index.
        snapshot_path: Per-shard bootstrap snapshot
            (:func:`~repro.serving.service.save_shard_snapshot`).
        service_config: The per-shard :class:`~repro.serving.ServiceConfig`.
        tagger / reranker: Trained models (picklable modules); ``None``
            for a model-less cluster.
        generational: Wrap the shard store in a
            :class:`~repro.kg.generations.GenerationalStore` so
            ``apply_delta`` can grow it.
        cluster_generation_id: The cluster generation the bootstrap
            snapshot represents; keys the worker's first retained bundle.
    """

    shard_id: int
    snapshot_path: str
    service_config: Any
    tagger: Any = None
    reranker: Any = None
    generational: bool = False
    cluster_generation_id: int = 0


def _dense_presence(service: AliCoCoService) -> tuple[str, ...]:
    """Names of the dense indexes this worker actually holds."""
    return tuple(
        sorted(
            name
            for name, index in service._gen.dense_indexes.items()
            if index is not None
        )
    )


class _ShardWorker:
    """Worker-process request handler over one shard service."""

    def __init__(self, service: AliCoCoService, cluster_generation_id: int):
        self._service = service
        self._gens = {cluster_generation_id: service._gen}

    def dispatch(self, method: str, args: tuple) -> Any:
        if method in ROUTED_ENDPOINTS:
            return getattr(self._service, method)(*args)
        handler = getattr(self, f"_rpc_{method}", None)
        if handler is None:
            raise ConfigError(f"unknown RPC method {method!r}")
        return handler(*args)

    def _gen_for(self, cluster_generation_id: int) -> Any:
        gen = self._gens.get(cluster_generation_id)
        if gen is None:
            retained = ", ".join(str(key) for key in sorted(self._gens))
            raise DataError(
                f"worker retains no cluster generation "
                f"{cluster_generation_id} (retained: {retained})"
            )
        return gen

    # -------------------------------------------------- scattered arms
    def _rpc_search_arm(
        self, generation_id: int, tokens: tuple[str, ...], k: int
    ) -> tuple:
        gen = self._gen_for(generation_id)
        return self._service._search_uncached(tokens, k, index=gen.search_index)

    def _rpc_dense_arm(
        self, generation_id: int, name: str, vector: Any, k: int
    ) -> tuple:
        gen = self._gen_for(generation_id)
        return self._service._dense_arm(name, vector, k, indexes=gen.dense_indexes)

    def _rpc_items_arm(
        self, generation_id: int, concept_id: str, k: int
    ) -> tuple:
        gen = self._gen_for(generation_id)
        return self._service._items_uncached(concept_id, k, store=gen.store)

    def _rpc_pool_scores(
        self, query_tokens: tuple, node_ids: list, texts: list
    ) -> list[float]:
        reranker = require_model(
            self._service._reranker, RERANKER_MODEL, "pool_scores"
        )
        return self._service._pool_scores(reranker, query_tokens, node_ids, texts)

    # ----------------------------------------------------- maintenance
    def _rpc_ping(self) -> tuple:
        return ("pong", os.getpid(), self._service.generation_id)

    def _rpc_stats(self) -> Any:
        return self._service.stats()

    def _rpc_dense_presence(self) -> tuple[str, ...]:
        return _dense_presence(self._service)

    def _rpc_index_states(self) -> dict[str, Any]:
        return {
            name: index.to_state()
            for name, index in self._service._gen.dense_indexes.items()
            if index is not None
        }

    def _rpc_apply_delta(
        self, cluster_generation_id: int, ops: list, projection_state: Any
    ) -> tuple:
        """Grow the shard store with routed delta ops and publish.

        ``ops`` is the parent's pre-routed sequence for this shard, in
        global insertion order: ``("node", node)`` adds a fresh node,
        ``("ghost", node)`` adds a replica tolerating duplicates,
        ``("relation", relation)`` adds an edge.  The fresh projection
        of the advanced global concept index rides along as serialised
        state (a shard must never extend its index with local corpus
        statistics).  Returns the worker's own generation id plus its
        dense-index presence, so the parent can track both.
        """
        store = self._service.store
        for kind, payload in ops:
            if kind == "node":
                store.add_node(payload)
            elif kind == "ghost":
                try:
                    store.add_node(payload)
                except DuplicateNodeError:
                    pass
            elif kind == "relation":
                store.add_relation(payload)
            else:
                raise DataError(f"unknown delta op kind {kind!r}")
        projection = (
            BM25Index.from_state(projection_state)
            if projection_state is not None
            else None
        )
        self._service.publish(search_index=projection)
        gen = self._service._gen
        # A shard with no delta no-ops its store publish and keeps the
        # old bundle — correct for its store and dense indexes, but the
        # lexical arm must still serve the *fresh* projection (global
        # corpus statistics moved even if this shard's documents did
        # not).  Mirror the thread executor by rebinding it.
        if gen.search_index is not projection:
            gen = replace(gen, search_index=projection)
        self._gens[cluster_generation_id] = gen
        while len(self._gens) > RETAINED_GENERATIONS:
            self._gens.pop(min(self._gens))
        return (self._service.generation_id, _dense_presence(self._service))


def _worker_main(connection: Any, spec: ShardWorkerSpec) -> None:
    """Spawn target: boot the shard service, hello, then serve the loop."""
    try:
        service = shard_service_from_snapshot(
            spec.snapshot_path,
            config=spec.service_config,
            tagger=spec.tagger,
            reranker=spec.reranker,
            generational=spec.generational,
        )
        worker = _ShardWorker(service, spec.cluster_generation_id)
        hello = (True, ("ready", os.getpid(), _dense_presence(service)))
    except BaseException as error:  # boot failures must travel, typed
        try:
            connection.send_bytes(encode_frame(error_envelope(error)))
        finally:
            connection.close()
        return
    connection.send_bytes(encode_frame(hello))
    try:
        serve_connection(connection, worker.dispatch)
    finally:
        connection.close()


@dataclass
class _WorkerSlot:
    """Parent-side mutable state for one shard worker."""

    spec: ShardWorkerSpec
    channel: ShardChannel
    process: Any = None
    pid: int = 0
    restarts: int = 0
    dead: bool = False
    delta_log: list = field(default_factory=list)


@dataclass(frozen=True)
class WorkerStats:
    """One shard worker's parent-side health report.

    Attributes:
        shard: Shard index.
        pid: The worker process id (0 before first boot).
        alive: Whether the process is currently running and serviceable.
        restarts: Respawns consumed from the restart budget.
        calls: RPC round-trips completed.
        rtt_p50_ms / rtt_p95_ms / rtt_p99_ms: Round-trip percentiles.
    """

    shard: int
    pid: int
    alive: bool
    restarts: int
    calls: int
    rtt_p50_ms: float
    rtt_p95_ms: float
    rtt_p99_ms: float


@dataclass(frozen=True)
class ProcPoolStats:
    """Whole-pool worker health (one entry per shard)."""

    workers: tuple[WorkerStats, ...]

    @property
    def total_restarts(self) -> int:
        """Respawns consumed across all shards."""
        return sum(worker.restarts for worker in self.workers)

    @property
    def all_alive(self) -> bool:
        """Whether every shard currently has a live worker."""
        return all(worker.alive for worker in self.workers)


class ProcessShardPool:
    """Spawned shard workers behind a framed-RPC scatter/route surface.

    Args:
        specs: One :class:`ShardWorkerSpec` per shard, in shard order.
        max_restarts: Respawns allowed per worker before the shard
            degrades to :class:`~repro.errors.ShardUnavailableError`.
        reservoir_capacity / seed: Per-channel round-trip reservoirs.
        boot_timeout: Seconds to wait for a worker's hello frame.

    Raises:
        ShardUnavailableError: If a worker fails to boot in time.
        ReproError: A worker-side boot failure, re-raised typed.
    """

    def __init__(
        self,
        specs: list[ShardWorkerSpec],
        *,
        max_restarts: int = 2,
        reservoir_capacity: int = 512,
        seed: int = 0,
        boot_timeout: float = 120.0,
    ):
        if max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {max_restarts}")
        self._context = multiprocessing.get_context("spawn")
        self._max_restarts = max_restarts
        self._boot_timeout = boot_timeout
        self._closed = False
        self._slots = [
            _WorkerSlot(
                spec=spec,
                channel=ShardChannel(
                    None,
                    reservoir_capacity=reservoir_capacity,
                    seed=seed + 211 + position,
                ),
            )
            for position, spec in enumerate(specs)
        ]
        self._presence: set[str] = set()
        try:
            for slot in self._slots:
                presence = self._spawn_locked(slot)
                self._presence.update(presence)
        except BaseException:
            self.close()
            raise

    # --------------------------------------------------------- lifecycle
    def _spawn_locked(self, slot: _WorkerSlot) -> tuple[str, ...]:
        """(Re)spawn one worker and wait for its hello.

        Caller holds the slot's channel lock (or is the constructor,
        before the pool is shared).  Returns the worker's dense-index
        presence from the hello frame.
        """
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, slot.spec),
            name=f"alicoco-shard-{slot.spec.shard_id}",
            daemon=True,
        )
        process.start()
        child_end.close()
        slot.process = process
        slot.channel.reset(parent_end)
        if not parent_end.poll(self._boot_timeout):
            self._reap(slot)
            raise ShardUnavailableError(
                f"shard {slot.spec.shard_id} worker sent no hello within "
                f"{self._boot_timeout:.0f}s",
                shard=slot.spec.shard_id,
            )
        try:
            ok, value = decode_frame(parent_end.recv_bytes())
        except _PIPE_ERRORS as error:
            self._reap(slot)
            raise ShardUnavailableError(
                f"shard {slot.spec.shard_id} worker died before its hello: "
                f"{error!r}",
                shard=slot.spec.shard_id,
            ) from error
        if not ok:
            self._reap(slot)
            raise_remote(value)
        _tag, pid, presence = value
        slot.pid = pid
        return presence

    def _reap(self, slot: _WorkerSlot) -> None:
        """Force one worker process down and release its pipe."""
        slot.channel.close()
        process = slot.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def _restart_locked(self, slot: _WorkerSlot, cause: BaseException) -> None:
        """Consume restart budget and respawn + replay, or degrade typed.

        Caller holds the slot's channel lock.
        """
        shard = slot.spec.shard_id
        self._reap(slot)
        if slot.restarts >= self._max_restarts:
            slot.dead = True
            raise ShardUnavailableError(
                f"shard {shard} worker is gone and its restart budget "
                f"({self._max_restarts}) is exhausted: {cause!r}",
                shard=shard,
            ) from cause
        slot.restarts += 1
        try:
            self._spawn_locked(slot)
            # Replay every acknowledged delta over the bootstrap image,
            # in publish order — the respawned worker rejoins at the
            # generation it crashed at, bit-identically.
            for method, args in slot.delta_log:
                slot.channel.send(method, args)
                slot.channel.receive()
        except _PIPE_ERRORS as error:
            raise ShardUnavailableError(
                f"shard {shard} worker respawn failed: {error!r}", shard=shard
            ) from error

    def close(self) -> None:
        """Shut every worker down and join it (idempotent).

        Workers get a cooperative ``shutdown`` round-trip first; a
        worker that does not exit promptly is terminated.  After close
        no worker process of this pool is left running.
        """
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            with slot.channel.lock:
                process = slot.process
                if process is not None and process.is_alive():
                    try:
                        slot.channel.send("shutdown", ())
                        slot.channel.receive()
                    except Exception:
                        pass
                self._reap(slot)

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- calls
    def call(self, shard: int, method: str, *args: Any) -> Any:
        """One routed round-trip, with restart-once-on-crash.

        Raises:
            ShardUnavailableError: If the shard's worker is dead and the
                restart budget is exhausted (or the respawn failed).
            ReproError: Worker-side failures, re-raised typed.
        """
        slot = self._slots[shard]
        with slot.channel.lock:
            self._check_serviceable(slot)
            try:
                return slot.channel.roundtrip(method, args)
            except _PIPE_ERRORS as error:
                self._restart_locked(slot, error)
                try:
                    return slot.channel.roundtrip(method, args)
                except _PIPE_ERRORS as again:
                    raise ShardUnavailableError(
                        f"shard {shard} worker died again right after a "
                        f"restart: {again!r}",
                        shard=shard,
                    ) from again

    def _check_serviceable(self, slot: _WorkerSlot) -> None:
        if self._closed:
            raise ShardUnavailableError(
                f"shard {slot.spec.shard_id}: the worker pool is closed",
                shard=slot.spec.shard_id,
            )
        if slot.dead:
            raise ShardUnavailableError(
                f"shard {slot.spec.shard_id} worker is gone (restart "
                f"budget {self._max_restarts} exhausted)",
                shard=slot.spec.shard_id,
            )

    def scatter(self, calls: Mapping[int, tuple[str, tuple]]) -> dict[int, Any]:
        """Pipelined fan-out: send to every shard, then collect.

        Channel locks are held from send to receive, acquired in
        increasing shard order (routed calls take a single lock, so
        ordered multi-acquisition cannot deadlock them).  Workers
        compute their sub-requests truly in parallel — the GIL escape.
        A shard whose pipe breaks mid-scatter is retried once through
        :meth:`call` (which restarts it) after all locks are released;
        worker-side *application* errors are drained from every shard
        first and then re-raised deterministically (lowest shard wins).

        Returns:
            ``{shard: result}`` for every entry in ``calls``.
        """
        shards = sorted(calls)
        slots = {shard: self._slots[shard] for shard in shards}
        results: dict[int, Any] = {}
        crashed: dict[int, BaseException] = {}
        failed: dict[int, BaseException] = {}
        starts: dict[int, float] = {}
        acquired: list[int] = []
        try:
            for shard in shards:
                slot = slots[shard]
                slot.channel.lock.acquire()
                acquired.append(shard)
                try:
                    self._check_serviceable(slot)
                    starts[shard] = perf_counter()
                    method, args = calls[shard]
                    slot.channel.send(method, args)
                except _PIPE_ERRORS as error:
                    crashed[shard] = error
                except ShardUnavailableError as error:
                    failed[shard] = error
            for shard in shards:
                if shard in crashed or shard in failed:
                    continue
                slot = slots[shard]
                try:
                    results[shard] = slot.channel.receive()
                    slot.channel.record_roundtrip(perf_counter() - starts[shard])
                except _PIPE_ERRORS as error:
                    crashed[shard] = error
                except Exception as error:  # app-level: drain the rest
                    failed[shard] = error
        finally:
            for shard in reversed(acquired):
                slots[shard].channel.lock.release()
        # Crashed shards get one restart-and-retry each, outside the
        # multi-lock region; a retry failure propagates typed.
        for shard in sorted(crashed):
            method, args = calls[shard]
            slot = slots[shard]
            with slot.channel.lock:
                self._check_serviceable(slot)
                self._restart_locked(slot, crashed[shard])
                try:
                    results[shard] = slot.channel.roundtrip(method, args)
                except _PIPE_ERRORS as again:
                    raise ShardUnavailableError(
                        f"shard {shard} worker died again right after a "
                        f"restart: {again!r}",
                        shard=shard,
                    ) from again
        if failed:
            raise failed[min(failed)]
        return results

    # ----------------------------------------------------------- mutation
    def apply_delta(
        self,
        shard: int,
        cluster_generation_id: int,
        ops: list,
        projection_state: Any,
    ) -> tuple:
        """Ship one shard's publish delta and log it for crash replay.

        The payload lands in the shard's delta log only after the worker
        acknowledges it — a worker that crashes mid-apply restarts from
        the bootstrap image plus the *previous* deltas and the retried
        call applies this one exactly once.

        Returns:
            ``(worker generation id, dense presence)`` from the worker.
        """
        args = (cluster_generation_id, ops, projection_state)
        value = self.call(shard, "apply_delta", *args)
        self._slots[shard].delta_log.append(("apply_delta", args))
        _generation, presence = value
        self._presence.update(presence)
        return value

    # ------------------------------------------------------ introspection
    @property
    def n_shards(self) -> int:
        """Number of shard workers."""
        return len(self._slots)

    def dense_presence(self) -> tuple[str, ...]:
        """Dense index names present on at least one worker (from the
        boot hellos, unioned with every ``apply_delta`` response)."""
        return tuple(sorted(self._presence))

    def ping(self, shard: int) -> tuple:
        """Health-check one worker (restarts it if crashed, as any call)."""
        return self.call(shard, "ping")

    def ping_all(self) -> list[tuple]:
        """Health-check every worker, in shard order."""
        return [self.ping(shard) for shard in range(self.n_shards)]

    def alive(self, shard: int) -> bool:
        """Whether a shard currently has a live, serviceable worker."""
        slot = self._slots[shard]
        return (
            not slot.dead
            and not self._closed
            and slot.process is not None
            and slot.process.is_alive()
        )

    def worker_process(self, shard: int) -> Any:
        """The live process handle (tests kill it to exercise recovery)."""
        return self._slots[shard].process

    def stats(self) -> ProcPoolStats:
        """Per-worker health: liveness, restart budget burn, RTT."""
        workers = []
        for shard, slot in enumerate(self._slots):
            channel = slot.channel.stats()
            workers.append(
                WorkerStats(
                    shard=shard,
                    pid=slot.pid,
                    alive=self.alive(shard),
                    restarts=slot.restarts,
                    calls=channel.calls,
                    rtt_p50_ms=channel.rtt_p50_ms,
                    rtt_p95_ms=channel.rtt_p95_ms,
                    rtt_p99_ms=channel.rtt_p99_ms,
                )
            )
        return ProcPoolStats(workers=tuple(workers))


def snapshot_dir_for(base: str | Path | None) -> Path:
    """The directory per-shard bootstrap snapshots are written to.

    A caller-provided directory is created (parents included) and
    reused; ``None`` makes a fresh private temporary directory.
    """
    import tempfile

    if base is None:
        return Path(tempfile.mkdtemp(prefix="alicoco-shards-"))
    path = Path(base)
    path.mkdir(parents=True, exist_ok=True)
    return path
