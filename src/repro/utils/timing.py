"""Lightweight stage-timing instrumentation.

The construction pipeline is the hot path of this reproduction (the paper
builds the net over 98M items), so every build carries a
:class:`StageTimer` that records wall-clock seconds per named stage.
Benchmarks read the timer off :class:`~repro.pipeline.build.BuildResult`
to attribute cost to stages instead of re-deriving it from end-to-end
wall time.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence


class StageTimer:
    """Accumulating wall-clock timer keyed by stage name.

    Stages may repeat (times accumulate) and nest (each level records its
    own inclusive time)::

        timer = StageTimer()
        with timer.stage("item-layer"):
            with timer.stage("item-matching"):
                ...
        timer.seconds("item-matching")
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator["StageTimer"]:
        """Time one stage; re-entry accumulates into the same bucket."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated seconds for a stage (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """How many times a stage was entered."""
        return self._calls.get(name, 0)

    @property
    def stages(self) -> dict[str, float]:
        """Stage -> accumulated seconds, in first-entry order."""
        return dict(self._seconds)

    def total(self) -> float:
        """Sum over all stages (nested stages count twice by design)."""
        return sum(self._seconds.values())

    def merge(self, other: "StageTimer") -> "StageTimer":
        """Fold another timer's stages into this one (for aggregation
        across repeated builds)."""
        for name, secs in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + secs
            self._calls[name] = self._calls.get(name, 0) + other._calls[name]
        return self

    def format_table(self, title: str = "stage timings") -> str:
        """Human-readable per-stage table, slowest first."""
        lines = [title]
        for name, secs in sorted(self._seconds.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<24} {secs * 1e3:9.2f} ms"
                         f"  x{self._calls[name]}")
        return "\n".join(lines)


def quantile(samples: Sequence[float], q: float) -> float:
    """Linearly-interpolated quantile of a sample set (0.0 when empty).

    ``q`` is a fraction in [0, 1]; e.g. ``quantile(latencies, 0.95)`` is
    the p95.  Matches numpy's default (linear) interpolation without
    requiring the samples to be pre-sorted.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyReservoir:
    """Bounded latency sample set with streaming quantiles.

    A serving endpoint answers millions of queries; keeping every latency
    would grow without bound, and a plain ring buffer would bias the
    quantiles toward the most recent burst.  This keeps a uniform random
    sample of *all* recorded values using Vitter's algorithm R in O(1)
    memory per endpoint, so ``p50/p95/p99`` stay representative of the
    whole run.  Replacement decisions come from a private seeded
    :class:`random.Random`, keeping benchmarks reproducible.

    The reservoir is thread-safe: one lock guards the sample list, the
    observation count and the replacement RNG, so concurrent ``record``
    calls from serving threads can never lose an observation or corrupt
    the sample invariant (``len(samples) <= capacity``), and quantile
    reads always see a consistent sample set.

    Args:
        capacity: Maximum retained samples.
        seed: Seed for the replacement RNG.
    """

    def __init__(self, capacity: int = 512, seed: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._count = 0
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency observation (in seconds)."""
        with self._lock:
            self._count += 1
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
                return
            slot = self._random.randrange(self._count)
            if slot < self.capacity:
                self._samples[slot] = seconds

    @property
    def count(self) -> int:
        """Total observations recorded (not just those retained)."""
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Interpolated quantile over the retained sample, in seconds."""
        with self._lock:
            samples = list(self._samples)
        return quantile(samples, q)

    def percentiles_ms(self) -> dict[str, float]:
        """The standard serving latency summary, in milliseconds.

        All three percentiles come from one consistent snapshot of the
        sample set (a single lock acquisition).
        """
        with self._lock:
            samples = list(self._samples)
        return {name: quantile(samples, q) * 1e3
                for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))}
