"""Lightweight stage-timing instrumentation.

The construction pipeline is the hot path of this reproduction (the paper
builds the net over 98M items), so every build carries a
:class:`StageTimer` that records wall-clock seconds per named stage.
Benchmarks read the timer off :class:`~repro.pipeline.build.BuildResult`
to attribute cost to stages instead of re-deriving it from end-to-end
wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class StageTimer:
    """Accumulating wall-clock timer keyed by stage name.

    Stages may repeat (times accumulate) and nest (each level records its
    own inclusive time)::

        timer = StageTimer()
        with timer.stage("item-layer"):
            with timer.stage("item-matching"):
                ...
        timer.seconds("item-matching")
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator["StageTimer"]:
        """Time one stage; re-entry accumulates into the same bucket."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated seconds for a stage (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """How many times a stage was entered."""
        return self._calls.get(name, 0)

    @property
    def stages(self) -> dict[str, float]:
        """Stage -> accumulated seconds, in first-entry order."""
        return dict(self._seconds)

    def total(self) -> float:
        """Sum over all stages (nested stages count twice by design)."""
        return sum(self._seconds.values())

    def merge(self, other: "StageTimer") -> "StageTimer":
        """Fold another timer's stages into this one (for aggregation
        across repeated builds)."""
        for name, secs in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + secs
            self._calls[name] = self._calls.get(name, 0) + other._calls[name]
        return self

    def format_table(self, title: str = "stage timings") -> str:
        """Human-readable per-stage table, slowest first."""
        lines = [title]
        for name, secs in sorted(self._seconds.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<24} {secs * 1e3:9.2f} ms"
                         f"  x{self._calls[name]}")
        return "\n".join(lines)
