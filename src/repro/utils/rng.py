"""Deterministic random-number plumbing.

Everything random in the library flows from a single master seed.  Components
derive child seeds from (master seed, component name) so that adding a new
component never perturbs the random streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: str) -> int:
    """Derive a stable child seed from a master seed and a name path.

    The derivation hashes the names, so streams are independent of the order
    in which components are created.

    Args:
        master_seed: The run's master seed.
        *names: A path of component names, e.g. ``("synth", "items")``.

    Returns:
        A 32-bit unsigned seed.
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:4], "big")


def spawn_rng(master_seed: int, *names: str) -> np.random.Generator:
    """Create a numpy Generator seeded from a derived child seed."""
    return np.random.default_rng(derive_seed(master_seed, *names))
