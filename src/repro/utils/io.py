"""File I/O helpers: atomic writes and JSON-lines streams."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import DataError


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write text to ``path`` atomically (write temp file, then rename).

    A crash mid-write never leaves a truncated file behind.
    """
    path = Path(path)
    handle, temp_name = tempfile.mkstemp(dir=path.parent,
                                         prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as temp_file:
            temp_file.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def write_jsonl(path: str | Path, records: Iterable[dict[str, Any]]) -> int:
    """Write records as JSON lines atomically; returns the line count.

    Records are streamed to a temp file in the target directory one line
    at a time (never materialising the whole payload in memory — a full
    net snapshot can be orders of magnitude larger than any single
    record), fsynced, and renamed over ``path`` in one step.  A crash at
    any point mid-write leaves the previous contents of ``path`` intact
    and never a truncated file.
    """
    path = Path(path)
    handle, temp_name = tempfile.mkstemp(dir=path.parent,
                                         prefix=f".{path.name}.", suffix=".tmp")
    count = 0
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as temp_file:
            for record in records:
                temp_file.write(json.dumps(record, ensure_ascii=False))
                temp_file.write("\n")
                count += 1
            temp_file.flush()
            os.fsync(temp_file.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return count


def read_jsonl_bulk(path: str | Path) -> list[tuple[int, dict[str, Any]]]:
    """Like :func:`read_jsonl`, but parses the whole file in one decoder
    call.

    Joining the lines into a single JSON array amortises the per-call
    overhead of ``json.loads`` across the file — snapshot loads spend
    most of their time here, so this is the serving warm-start fast path.
    Any parse failure (including blank lines, which break the join) falls
    back to the per-line reader so malformed input still reports exact
    line numbers.

    Raises:
        DataError: On malformed JSON or non-object lines, with the line
            number in the message.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        return []
    try:
        records = json.loads("[" + ",".join(lines) + "]")
    except json.JSONDecodeError:
        return list(read_jsonl(path))
    for line_number, record in enumerate(records, start=1):
        if not isinstance(record, dict):
            raise DataError(f"line {line_number}: expected a JSON object")
    return list(enumerate(records, start=1))


def read_jsonl(path: str | Path) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield (line number, record) pairs from a JSON-lines file.

    Raises:
        DataError: On malformed JSON or non-object lines, with the line
            number in the message.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(
                    f"line {line_number}: malformed JSON ({error.msg})") \
                    from error
            if not isinstance(record, dict):
                raise DataError(f"line {line_number}: expected a JSON object")
            yield line_number, record
