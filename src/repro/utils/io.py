"""File I/O helpers: atomic writes and JSON-lines streams."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import DataError


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write text to ``path`` atomically (write temp file, then rename).

    A crash mid-write never leaves a truncated file behind.
    """
    path = Path(path)
    handle, temp_name = tempfile.mkstemp(dir=path.parent,
                                         prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as temp_file:
            temp_file.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def write_jsonl(path: str | Path, records: Iterable[dict[str, Any]]) -> int:
    """Write records as JSON lines (atomically); returns the line count."""
    lines = [json.dumps(record, ensure_ascii=False) for record in records]
    atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_jsonl(path: str | Path) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield (line number, record) pairs from a JSON-lines file.

    Raises:
        DataError: On malformed JSON or non-object lines, with the line
            number in the message.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(
                    f"line {line_number}: malformed JSON ({error.msg})") \
                    from error
            if not isinstance(record, dict):
                raise DataError(f"line {line_number}: expected a JSON object")
            yield line_number, record
