"""Evaluation metrics used throughout the paper's experiments.

The paper reports MAP, MRR and P@1 for hypernym discovery (Table 3), AUC /
F1 / P@10 for semantic matching (Table 6), and precision / recall / F1 for
tagging (Table 5).  All implementations are pure numpy and accept plain
Python sequences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DataError


def average_precision(relevance: Sequence[int]) -> float:
    """Average precision of a single ranked list.

    Args:
        relevance: Binary relevance judgements in rank order (1 = relevant).

    Returns:
        AP in [0, 1]; 0.0 when the list has no relevant entries.
    """
    hits = 0
    score = 0.0
    for rank, rel in enumerate(relevance, start=1):
        if rel:
            hits += 1
            score += hits / rank
    if hits == 0:
        return 0.0
    return score / hits


def mean_average_precision(ranked_lists: Sequence[Sequence[int]]) -> float:
    """MAP across queries, each a binary relevance list in rank order."""
    if not ranked_lists:
        raise DataError("mean_average_precision needs at least one ranked list")
    return float(np.mean([average_precision(rl) for rl in ranked_lists]))


def reciprocal_rank(relevance: Sequence[int]) -> float:
    """Reciprocal rank of the first relevant entry (0.0 if none)."""
    for rank, rel in enumerate(relevance, start=1):
        if rel:
            return 1.0 / rank
    return 0.0


def mean_reciprocal_rank(ranked_lists: Sequence[Sequence[int]]) -> float:
    """MRR across queries, each a binary relevance list in rank order."""
    if not ranked_lists:
        raise DataError("mean_reciprocal_rank needs at least one ranked list")
    return float(np.mean([reciprocal_rank(rl) for rl in ranked_lists]))


def precision_at_k(relevance: Sequence[int], k: int) -> float:
    """Precision of the top-``k`` entries of a single ranked list.

    Lists shorter than ``k`` are evaluated over their actual length, matching
    the common convention for tiny candidate pools.
    """
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    top = list(relevance)[:k]
    if not top:
        return 0.0
    return float(sum(1 for rel in top if rel) / len(top))


def roc_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formula.

    Ties in scores receive the average rank, matching scikit-learn.

    Raises:
        DataError: If labels are all-positive or all-negative.
    """
    y = np.asarray(labels, dtype=float)
    s = np.asarray(scores, dtype=float)
    if y.shape != s.shape:
        raise DataError(f"labels/scores length mismatch: {y.shape} vs {s.shape}")
    n_pos = float(np.sum(y == 1))
    n_neg = float(np.sum(y == 0))
    if n_pos == 0 or n_neg == 0:
        raise DataError("roc_auc needs both positive and negative labels")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, len(s) + 1)
    # Average ranks over tied scores.
    sorted_scores = s[order]
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[y == 1]))
    return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def precision_recall_f1(
    true_positive: int, false_positive: int, false_negative: int
) -> tuple[float, float, float]:
    """Precision, recall and F1 from raw counts (0.0 where undefined)."""
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return precision, recall, f1


def f1_score(labels: Sequence[int], predictions: Sequence[int]) -> float:
    """Binary F1 of hard predictions against binary labels."""
    y = np.asarray(labels, dtype=int)
    p = np.asarray(predictions, dtype=int)
    if y.shape != p.shape:
        raise DataError(f"labels/predictions length mismatch: {y.shape} vs {p.shape}")
    tp = int(np.sum((y == 1) & (p == 1)))
    fp = int(np.sum((y == 0) & (p == 1)))
    fn = int(np.sum((y == 1) & (p == 0)))
    return precision_recall_f1(tp, fp, fn)[2]


def accuracy(labels: Sequence[int], predictions: Sequence[int]) -> float:
    """Fraction of exact matches between two equal-length label sequences."""
    y = np.asarray(labels)
    p = np.asarray(predictions)
    if y.shape != p.shape:
        raise DataError(f"labels/predictions length mismatch: {y.shape} vs {p.shape}")
    if y.size == 0:
        raise DataError("accuracy of an empty sequence is undefined")
    return float(np.mean(y == p))
