"""Shared utilities: seeded RNG plumbing, text helpers, evaluation metrics."""

from .rng import spawn_rng, derive_seed
from .metrics import (
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_at_k,
    roc_auc,
    f1_score,
    precision_recall_f1,
)
from .text import ngrams, normalize_text
from .timing import StageTimer

__all__ = [
    "StageTimer",
    "spawn_rng",
    "derive_seed",
    "average_precision",
    "mean_average_precision",
    "mean_reciprocal_rank",
    "precision_at_k",
    "roc_auc",
    "f1_score",
    "precision_recall_f1",
    "ngrams",
    "normalize_text",
]
