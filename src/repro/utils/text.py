"""Small text helpers shared by the NLP substrate and the generators."""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence

_WHITESPACE = re.compile(r"\s+")
_NON_WORD = re.compile(r"[^a-z0-9' -]+")


def normalize_text(text: str) -> str:
    """Lowercase, strip punctuation (keeping hyphens/apostrophes), squeeze spaces."""
    text = text.lower()
    text = _NON_WORD.sub(" ", text)
    return _WHITESPACE.sub(" ", text).strip()


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield contiguous n-grams of ``tokens`` as tuples."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i:i + n])


def join_phrase(words: Iterable[str]) -> str:
    """Join words into a canonical single-space phrase string."""
    return " ".join(w for w in words if w)
