"""Training objectives."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .tensor import Tensor, custom_op


def bce_with_logits(logits: Tensor, targets: np.ndarray,
                    weights: np.ndarray | None = None) -> Tensor:
    """Weighted mean binary cross-entropy on raw logits (stable).

    This is the point-wise negative log-likelihood objective of Eq. 3 in the
    paper, expressed on logits rather than probabilities.

    Args:
        logits: Tensor of any shape.
        targets: Array of 0/1 labels with the same shape.
        weights: Optional per-element weights (e.g. positive-class
            upweighting for heavily imbalanced pair data); the loss is the
            weighted mean.
    """
    y = np.asarray(targets, dtype=np.float64)
    if y.shape != logits.shape:
        raise ShapeError(f"targets shape {y.shape} != logits shape {logits.shape}")
    z = logits.data
    # log(1 + exp(-|z|)) + max(z, 0) - z*y  is the stable per-element loss.
    per_element = np.logaddexp(0.0, -np.abs(z)) + np.maximum(z, 0.0) - z * y
    if weights is None:
        w = np.ones_like(y)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != y.shape:
            raise ShapeError(
                f"weights shape {w.shape} != targets shape {y.shape}")
    total_weight = w.sum()
    if total_weight <= 0:
        raise ShapeError("weights must have positive sum")
    loss_value = (per_element * w).sum() / total_weight
    sigmoid = 1.0 / (1.0 + np.exp(-z))

    def backward(grad: np.ndarray) -> None:
        logits._accumulate(grad * w * (sigmoid - y) / total_weight)

    return custom_op((logits,), np.asarray(loss_value), backward)


def binary_nll(probabilities: Tensor, targets: np.ndarray,
               epsilon: float = 1e-9) -> Tensor:
    """Mean negative log-likelihood on probabilities already in (0, 1).

    Used where a model head ends in an explicit sigmoid (Eq. 2 / Eq. 3).
    """
    y = np.asarray(targets, dtype=np.float64)
    if y.shape != probabilities.shape:
        raise ShapeError(
            f"targets shape {y.shape} != probabilities shape {probabilities.shape}")
    clipped = probabilities * (1.0 - 2.0 * epsilon) + epsilon
    per_element = -(Tensor(y) * clipped.log() + Tensor(1.0 - y) * (1.0 - clipped).log())
    return per_element.mean()


def cross_entropy(logits: Tensor, class_ids: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy.

    Args:
        logits: ``(batch, num_classes)`` tensor of unnormalised scores.
        class_ids: ``(batch,)`` integer array of gold class indices.
    """
    if logits.ndim != 2:
        raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
    ids = np.asarray(class_ids, dtype=np.intp)
    if ids.shape != (logits.shape[0],):
        raise ShapeError(
            f"class_ids shape {ids.shape} != ({logits.shape[0]},)")
    log_probs = logits - logits.logsumexp(axis=1, keepdims=True)
    picked = log_probs[np.arange(len(ids)), ids]
    return -picked.mean()
