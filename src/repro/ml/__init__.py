"""A from-scratch reverse-mode autodiff engine and neural-network toolkit.

The paper trains five neural models (BiLSTM-CRF miner, projection-learning
hypernym scorer, Wide&Deep concept classifier, text-augmented NER tagger,
knowledge-aware matcher) on TensorFlow-era infrastructure.  This subpackage
is the laptop-scale substitute: a numpy :class:`Tensor` with automatic
differentiation, standard layers (linear, embedding, LSTM/BiLSTM, Conv1d,
attention), losses and optimizers.  Everything the five models need trains
end-to-end through this engine.
"""

from .tensor import Tensor, concat, enable_grad, is_grad_enabled, no_grad, stack
from .module import Module, Parameter
from .inference import InferenceSession, stable_sigmoid
from .losses import bce_with_logits, cross_entropy, binary_nll
from .optim import SGD, Adam, Adagrad
from .layers import (
    Linear,
    Embedding,
    LSTM,
    BiLSTM,
    Conv1d,
    AdditiveSelfAttention,
    Dropout,
    MLP,
)

__all__ = [
    "Tensor", "concat", "stack", "no_grad", "enable_grad", "is_grad_enabled",
    "Module", "Parameter",
    "InferenceSession", "stable_sigmoid",
    "bce_with_logits", "cross_entropy", "binary_nll",
    "SGD", "Adam", "Adagrad",
    "Linear", "Embedding", "LSTM", "BiLSTM", "Conv1d",
    "AdditiveSelfAttention", "Dropout", "MLP",
]
