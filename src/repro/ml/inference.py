"""Tape-free functional inference kernels over plain numpy arrays.

Serving traffic runs every model under ``no_grad`` — nothing is ever
backpropagated — yet the :class:`~repro.ml.tensor.Tensor` forward pass
still allocates a graph node, a backward closure and a parent tuple per
op.  On the re-rank hot path (tens of model calls per query, dozens of
ops per call) that bookkeeping dominates the arithmetic.  This module is
the serving-side answer: the handful of kernels the matchers need
(embedding gather, linear, same-padded conv1d, MLP, softmax, additive
attention pooling), written as plain vectorized numpy functions that
allocate nothing but their outputs.

**Exact parity is the contract.**  Each kernel mirrors the corresponding
:class:`Tensor` op's arithmetic *operation for operation* — e.g.
:func:`softmax` reproduces ``Tensor.softmax``'s
``exp(x - (max + log(sum(exp(x - max)))))`` formulation rather than the
textbook ``exp(x - max) / sum`` — so a fast-path score is bit-identical
to the taped forward pass, not merely close.  The parity suite in
``tests/test_inference_fastpath.py`` asserts this for every kernel and
every matcher.

:class:`InferenceSession` is the bridge from a trained
:class:`~repro.ml.module.Module` to these kernels: it extracts the
module's parameter arrays **once** (zero-copy views of each
``Parameter.data``, so in-place weight updates — optimizers and
``load_state_dict`` both mutate in place — stay visible) and exposes
layer-shaped helpers (``linear``/``conv1d``/``mlp``/``embed``) keyed by
the module's own dotted attribute names.  A served module gets its
session extracted at :func:`~repro.serving.models.prepare_serving_module`
time, before the first query arrives.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from .module import Module

__all__ = [
    "InferenceSession",
    "additive_attention_pool",
    "conv1d_same",
    "embedding_gather",
    "linear",
    "mlp",
    "softmax",
    "stable_sigmoid",
]


def stable_sigmoid(logits) -> np.ndarray:
    """Overflow-free logistic function, vectorized.

    The naive ``1 / (1 + exp(-x))`` overflows ``exp`` for very negative
    ``x`` (RuntimeWarning, then ``1/inf``); this computes
    ``z = exp(-|x|)`` (always in ``(0, 1]``) and picks
    ``1/(1+z)`` or ``z/(1+z)`` per element — exactly the two branches
    :meth:`~repro.matching.base.NeuralMatcher.score_text` always used,
    now shared and array-shaped.  Accepts scalars (returns a 0-d array;
    wrap in ``float``) and arrays of any shape.
    """
    x = np.asarray(logits, dtype=np.float64)
    z = np.exp(-np.abs(x))
    return np.where(x >= 0.0, 1.0 / (1.0 + z), z / (1.0 + z))


def embedding_gather(table: np.ndarray, ids) -> np.ndarray:
    """Rows of a 2-D embedding table; mirrors ``Tensor.gather_rows``."""
    if table.ndim != 2:
        raise ShapeError(f"embedding_gather expects a 2-D table, got {table.shape}")
    return table[np.asarray(ids, dtype=np.intp)]


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Affine map over the last axis; mirrors :class:`~repro.ml.Linear`."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def conv1d_same(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                kernel_size: int) -> np.ndarray:
    """Same-padded 1-D convolution over ``(time, in_dim)``.

    The im2col + matmul of :class:`~repro.ml.Conv1d` with the batch
    dimension dropped (serving scores one sequence at a time); identical
    arithmetic, identical output values.
    """
    time, dim = x.shape
    half = kernel_size // 2
    padded = np.pad(x, ((half, half), (0, 0)))
    cols = np.empty((time, kernel_size * dim))
    for offset in range(kernel_size):
        cols[:, offset * dim:(offset + 1) * dim] = padded[offset:offset + time, :]
    return cols @ weight + bias


def _relu(x: np.ndarray) -> np.ndarray:
    # Tensor.relu computes data * mask, not np.maximum — match it exactly.
    return x * (x > 0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.sigmoid (the taped op is the naive form; an MLP
    # activation never sees the extreme logits stable_sigmoid guards).
    return 1.0 / (1.0 + np.exp(-x))


_ACTIVATIONS = {
    "tanh": np.tanh,
    "relu": _relu,
    "sigmoid": _sigmoid,
}


def mlp(x: np.ndarray,
        layers: Sequence[tuple[np.ndarray, np.ndarray | None]],
        activation: str = "tanh") -> np.ndarray:
    """A :class:`~repro.ml.MLP` forward pass from ``(weight, bias)`` pairs.

    The activation is applied between layers, never after the last
    (which produces logits/scores), matching ``MLP.forward``.
    """
    act = _ACTIVATIONS[activation]
    for i, (weight, bias) in enumerate(layers):
        x = linear(x, weight, bias)
        if i < len(layers) - 1:
            x = act(x)
    return x


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax; bit-identical to ``Tensor.softmax``.

    ``Tensor.softmax`` is ``(x - logsumexp(x)).exp()``; reproducing that
    exact formulation (rather than ``exp(x - max) / sum``) keeps the
    fast path's attention weights byte-equal to the taped forward pass.
    """
    m = x.max(axis=axis, keepdims=True)
    total = np.exp(x - m).sum(axis=axis, keepdims=True)
    return np.exp(x - (m + np.log(total)))


def additive_attention_pool(left: np.ndarray, right: np.ndarray,
                            score_weight: np.ndarray,
                            left_states: np.ndarray,
                            right_states: np.ndarray,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Two-way additive attention pooling (the paper's Eqs. 11-14).

    Args:
        left: Pre-projected left side ``W1 @ concept``, ``(m, d)`` —
            computed once per query and reused across the pool.
        right: Pre-projected right side ``W2 @ title``, ``(t, d)``.
        score_weight: The scoring vector ``v`` as a ``(d, 1)`` matrix.
        left_states: Raw left encoder states to pool, ``(m, d)``.
        right_states: Raw right encoder states to pool, ``(t, d)``.

    Returns:
        ``(left_vector, right_vector)`` — the attention-pooled ``(d,)``
        vectors of both sides.
    """
    energies = np.tanh(left[:, None, :] + right[None, :, :]) @ score_weight
    attention = energies.reshape(left.shape[0], right.shape[0])
    left_weights = softmax(attention.sum(axis=1), axis=0)
    right_weights = softmax(attention.sum(axis=0), axis=0)
    return left_weights @ left_states, right_weights @ right_states


class InferenceSession:
    """One module's weights, extracted once, bound to the kernels above.

    Construction walks ``module.named_parameters()`` a single time and
    keeps zero-copy views of every parameter array; the per-query hot
    path then never touches the module tree again.  Because optimizers
    and ``load_state_dict`` update parameter arrays *in place*, the views
    always reflect the current weights — only structural changes (adding
    or replacing a :class:`~repro.ml.module.Parameter` object) require a
    new session.

    The helpers take the module's own dotted attribute names
    (``session.linear(x, "att_w1")``, ``session.mlp(x, "head", "relu")``)
    so a matcher's functional forward reads like its taped one.
    """

    def __init__(self, module: Module):
        self.module = module
        self._params: dict[str, np.ndarray] = {
            name: parameter.data for name, parameter in module.named_parameters()
        }
        self._mlp_layers: dict[str, list[tuple[np.ndarray, np.ndarray | None]]] = {}

    def weight(self, name: str) -> np.ndarray:
        """The extracted array for a dotted parameter name.

        Raises:
            KeyError: If the module has no such parameter.
        """
        return self._params[name]

    def embed(self, name: str, ids) -> np.ndarray:
        """Embedding-table rows, e.g. ``session.embed("embedding.weight", ids)``."""
        return embedding_gather(self._params[name], ids)

    def linear(self, x: np.ndarray, name: str) -> np.ndarray:
        """Apply the :class:`~repro.ml.Linear` submodule at ``name``."""
        return linear(x, self._params[f"{name}.weight"],
                      self._params.get(f"{name}.bias"))

    def conv1d(self, x: np.ndarray, name: str) -> np.ndarray:
        """Apply the :class:`~repro.ml.Conv1d` submodule at ``name``."""
        submodule = self._submodule(name)
        return conv1d_same(x, self._params[f"{name}.weight"],
                           self._params[f"{name}.bias"],
                           submodule.kernel_size)

    def mlp(self, x: np.ndarray, name: str, activation: str = "tanh") -> np.ndarray:
        """Apply the :class:`~repro.ml.MLP` submodule at ``name``."""
        layers = self._mlp_layers.get(name)
        if layers is None:
            layers = []
            index = 0
            while f"{name}.layers.{index}.weight" in self._params:
                layers.append((self._params[f"{name}.layers.{index}.weight"],
                               self._params.get(f"{name}.layers.{index}.bias")))
                index += 1
            if not layers:
                raise KeyError(f"module has no MLP parameters under {name!r}")
            self._mlp_layers[name] = layers
        return mlp(x, layers, activation)

    def _submodule(self, name: str):
        target = self.module
        for part in name.split("."):
            target = target[int(part)] if part.isdigit() else getattr(target, part)
        return target
