"""First-order optimizers: SGD (with momentum), Adagrad, Adam."""

from __future__ import annotations

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and the zero_grad helper."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns:
            The pre-clipping global norm.
        """
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adagrad(Optimizer):
    """Adagrad: per-coordinate learning rates from accumulated squares."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1,
                 epsilon: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.epsilon = epsilon
        self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulator):
            if param.grad is None:
                continue
            acc += param.grad ** 2
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.epsilon)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-2,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
