"""Reverse-mode automatic differentiation on numpy arrays.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar result walks the
recorded graph in reverse topological order and accumulates gradients into
every tensor created with ``requires_grad=True``.

The op set is intentionally small — exactly what the paper's five models
need: arithmetic with broadcasting, matmul, the usual nonlinearities,
reductions, indexing/gather (for embeddings), concat/stack, and logsumexp
(for the CRF partition function).

**Inference mode is context-local.**  Graph recording is controlled by a
:class:`contextvars.ContextVar`, not a module global: every thread (and
every async task) owns an independent flag.  A serving thread inside
:func:`no_grad` can therefore never switch off recording for a training
thread mid-backward, and two overlapping ``no_grad()`` windows in
different threads cannot re-enable each other on exit — the failure mode
of the old module-global flag, where the first thread's ``finally``
restored ``True`` while the second thread was still inside its window,
silently polluting its "inference" tensors with graph nodes.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import ShapeError

#: Context-local graph-recording flag.  Each thread starts at the default
#: (enabled); ``no_grad``/``enable_grad`` swap it via set/reset tokens so
#: nesting and exceptions restore the exact previous state.
_GRAD_ENABLED: ContextVar[bool] = ContextVar("repro_grad_enabled", default=True)


def is_grad_enabled() -> bool:
    """Whether tensor ops in the current context record the autodiff graph."""
    return _GRAD_ENABLED.get()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (for inference).

    The switch is context-local: other threads' recording state is
    untouched, so concurrent inference and training never interfere.
    """
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


@contextlib.contextmanager
def enable_grad():
    """Re-enable graph recording inside a :func:`no_grad` region."""
    token = _GRAD_ENABLED.set(True)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autodiff tape.

    Attributes:
        data: The underlying float64 numpy array.
        grad: Accumulated gradient (same shape as ``data``) or ``None``.
        requires_grad: Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False,
                 _parents: tuple["Tensor", ...] = (),
                 _backward: Callable[[np.ndarray], None] | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        enabled = _GRAD_ENABLED.get()
        self.requires_grad = bool(requires_grad) and enabled
        self._parents = _parents if enabled else ()
        self._backward = _backward if enabled else None

    # ------------------------------------------------------------------ intro
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the raw array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- graph glue
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=tuple(parents),
                      _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: Upstream gradient; defaults to 1.0 (scalar outputs only).

        Raises:
            ShapeError: If called without ``grad`` on a non-scalar tensor.
        """
        if grad is None:
            if self.data.size != 1:
                raise ShapeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.multiply.outer(grad, other.data) \
                        if self.data.ndim > 1 else grad * other.data
                    # outer handles (..., n) @ (n,) -> (...,)
                    self._accumulate(_unbroadcast(np.asarray(grad_self), self.shape))
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.multiply.outer(self.data, grad) \
                        if other.data.ndim > 1 else self.data * grad
                    other._accumulate(_unbroadcast(np.asarray(grad_other), other.shape))
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------ reductions
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(ax % self.data.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(np.asarray(out_data), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == out_data)
        # Split gradient equally among ties for stability.
        counts = mask.sum(axis=axis, keepdims=True)
        if not keepdims:
            out = np.squeeze(out_data, axis=axis)
        else:
            out = out_data

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g / counts)

        return Tensor._make(np.asarray(out), (self,), backward)

    def logsumexp(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Numerically stable log-sum-exp along ``axis``."""
        m = self.data.max(axis=axis, keepdims=True)
        shifted = np.exp(self.data - m)
        total = shifted.sum(axis=axis, keepdims=True)
        out_keep = m + np.log(total)
        softmax = shifted / total
        out = out_keep if keepdims else np.squeeze(out_keep, axis=axis)

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(g * softmax)

        return Tensor._make(np.asarray(out), (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return (self - self.logsumexp(axis=axis, keepdims=True)).exp()

    # --------------------------------------------------------------- reshape
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(np.asarray(out_data), (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Embedding-style lookup: rows of a 2-D tensor by integer indices.

        Args:
            indices: Integer array of any shape; output has shape
                ``indices.shape + (dim,)``.
        """
        if self.ndim != 2:
            raise ShapeError(f"gather_rows expects a 2-D tensor, got {self.shape}")
        idx = np.asarray(indices, dtype=np.intp)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, idx.reshape(-1), grad.reshape(-1, self.shape[1]))
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equally-shaped tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def custom_op(inputs: Iterable[Tensor], out_data: np.ndarray,
              backward: Callable[[np.ndarray], None]) -> Tensor:
    """Create a tensor from a hand-written forward/backward pair.

    Used by layers (e.g. Conv1d, CRF) whose gradients are cheaper to derive
    by hand than to compose from primitive ops.  ``backward`` receives the
    upstream gradient and must call ``_accumulate`` on each input itself.
    """
    return Tensor._make(np.asarray(out_data, dtype=np.float64),
                        tuple(inputs), backward)
