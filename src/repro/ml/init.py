"""Weight initialisers (all take an explicit numpy Generator)."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...],
           std: float = 0.1) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape)
