"""Module/Parameter base classes, mirroring the familiar torch.nn layout."""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even when created under no_grad().
        self.requires_grad = True


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; ``parameters()`` discovers them recursively.  ``training``
    toggles behaviours such as dropout.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------- discovery
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{full}.{i}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        yield from element.modules()

    # ----------------------------------------------------------------- state
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    @contextlib.contextmanager
    def eval_mode(self):
        """Temporarily put the module tree in eval mode, then restore.

        Restores each submodule's previous ``training`` flag on exit,
        even on exceptions.  Note the flags themselves are plain instance
        state: toggling them is *not* thread-safe against a concurrent
        ``train()`` on the same module — a served module should be put in
        eval mode once and left there (see :mod:`repro.serving.models`),
        in which case re-entering this context is a no-op.
        """
        previous = [(module, module.training) for module in self.modules()]
        for module, _ in previous:
            module.training = False
        try:
            yield self
        finally:
            for module, was_training in previous:
                module.training = was_training

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises:
            KeyError: If a parameter is missing from ``state``.
        """
        for name, param in self.named_parameters():
            param.data[...] = state[name]

    # ------------------------------------------------------------------ call
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
