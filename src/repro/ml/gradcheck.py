"""Finite-difference gradient checking, used by the test suite.

Perturbation happens through multi-indexes into the tensor's *actual*
array, never through a flattened copy: ``data.reshape(-1)`` silently
copies when the array is non-contiguous (e.g. a post-``transpose`` view),
so the old flat-view loop perturbed a private copy the loss never saw and
returned an all-zero "gradient" without a word.  ``np.ndindex`` writes
land in the real buffer whatever the memory layout.

:func:`check_gradients` returns a :class:`GradCheckReport` instead of a
bare bool: truthiness preserves ``assert check_gradients(...)`` call
sites, while a failure carries per-tensor max absolute/relative errors so
a broken backward is diagnosable from the assertion message alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                     epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``tensor``.

    ``fn`` must recompute the scalar loss from ``tensor.data`` each call.
    Works for any memory layout, including non-contiguous views such as
    transposed parameters: each element is perturbed in place via its
    multi-index, so the write always reaches the array ``fn`` reads.
    """
    data = tensor.data
    grad = np.zeros(data.shape, dtype=np.float64)
    for index in np.ndindex(data.shape):
        original = data[index]
        data[index] = original + epsilon
        plus = fn().item()
        data[index] = original - epsilon
        minus = fn().item()
        data[index] = original
        grad[index] = (plus - minus) / (2.0 * epsilon)
    return grad


@dataclass(frozen=True)
class TensorGradCheck:
    """Finite-difference vs autograd comparison for one tensor.

    Attributes:
        index: Position of the tensor in the ``tensors`` argument.
        shape: The tensor's shape.
        max_abs_error: ``max |numeric - analytic|`` over all elements.
        max_rel_error: The absolute error over ``max(|numeric|,
            |analytic|, 1.0)`` — the quantity compared to ``tolerance``.
        passed: Whether ``max_rel_error <= tolerance``.
    """

    index: int
    shape: tuple[int, ...]
    max_abs_error: float
    max_rel_error: float
    passed: bool

    def __repr__(self) -> str:  # compact, assert-message friendly
        status = "ok" if self.passed else "FAIL"
        return (f"tensor[{self.index}] shape={self.shape} {status} "
                f"abs={self.max_abs_error:.3e} rel={self.max_rel_error:.3e}")


@dataclass(frozen=True)
class GradCheckReport:
    """Outcome of :func:`check_gradients` over every checked tensor.

    Truthy exactly when every tensor passed, so existing
    ``assert check_gradients(...)`` call sites keep working — but a
    failing assert now prints which tensors diverged and by how much.
    """

    results: tuple[TensorGradCheck, ...]
    tolerance: float

    def __bool__(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> tuple[TensorGradCheck, ...]:
        """The per-tensor results that exceeded the tolerance."""
        return tuple(result for result in self.results if not result.passed)

    @property
    def max_rel_error(self) -> float:
        """Worst relative error across all checked tensors."""
        return max((result.max_rel_error for result in self.results),
                   default=0.0)

    def __repr__(self) -> str:
        body = "; ".join(repr(result) for result in self.results)
        return f"GradCheckReport(tolerance={self.tolerance:g}: {body})"


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    epsilon: float = 1e-6,
                    tolerance: float = 1e-4) -> GradCheckReport:
    """Compare autograd gradients with finite differences.

    Returns:
        A :class:`GradCheckReport` — truthy when every gradient matches
        within ``tolerance`` (relative to the larger of the two norms,
        with an absolute floor), and carrying per-tensor max absolute and
        relative errors either way.
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = fn()
    loss.backward()
    results = []
    for position, tensor in enumerate(tensors):
        numeric = numeric_gradient(fn, tensor, epsilon=epsilon)
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(numeric)
        abs_error = float(np.abs(numeric - analytic).max()) \
            if numeric.size else 0.0
        denominator = max(float(np.abs(numeric).max()) if numeric.size else 0.0,
                          float(np.abs(analytic).max()) if analytic.size else 0.0,
                          1.0)
        rel_error = abs_error / denominator
        results.append(TensorGradCheck(
            index=position, shape=tuple(tensor.shape),
            max_abs_error=abs_error, max_rel_error=rel_error,
            passed=rel_error <= tolerance))
    return GradCheckReport(results=tuple(results), tolerance=tolerance)
