"""Finite-difference gradient checking, used by the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                     epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``tensor``.

    ``fn`` must recompute the scalar loss from ``tensor.data`` each call.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn().item()
        flat[i] = original - epsilon
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: list[Tensor],
                    epsilon: float = 1e-6, tolerance: float = 1e-4) -> bool:
    """Compare autograd gradients with finite differences.

    Returns:
        True if every gradient matches within ``tolerance`` (relative to the
        larger of the two norms, with an absolute floor).
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = fn()
    loss.backward()
    for tensor in tensors:
        numeric = numeric_gradient(fn, tensor, epsilon=epsilon)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(numeric)
        denominator = max(np.abs(numeric).max(), np.abs(analytic).max(), 1.0)
        if np.abs(numeric - analytic).max() / denominator > tolerance:
            return False
    return True
