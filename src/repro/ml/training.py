"""Training utilities shared by the model trainers.

Small, composable pieces: mini-batch iteration, early stopping and a
learning-curve record — the plumbing every one of the paper's five models
needs around its epoch loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, TypeVar

import numpy as np

from ..errors import DataError
from ..utils.rng import spawn_rng

T = TypeVar("T")


def minibatches(data: Sequence[T], batch_size: int,
                rng: np.random.Generator | None = None) -> Iterator[list[T]]:
    """Yield shuffled mini-batches covering ``data`` exactly once.

    Args:
        data: The dataset.
        batch_size: Maximum batch size (last batch may be smaller).
        rng: Optional generator; order is preserved when omitted.

    Raises:
        DataError: On an empty dataset or non-positive batch size.
    """
    if not data:
        raise DataError("cannot batch an empty dataset")
    if batch_size <= 0:
        raise DataError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(len(data))
    if rng is not None:
        order = rng.permutation(len(data))
    for start in range(0, len(data), batch_size):
        yield [data[int(i)] for i in order[start:start + batch_size]]


@dataclass
class EarlyStopping:
    """Patience-based stopping on a metric (mode='min' for losses).

    Call :meth:`update` after each epoch; it returns True while training
    should continue.
    """

    patience: int = 3
    mode: str = "min"
    min_delta: float = 1e-6
    best: float | None = None
    stale: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("min", "max"):
            raise DataError(f"mode must be 'min' or 'max', got {self.mode!r}")
        if self.patience < 1:
            raise DataError("patience must be >= 1")

    def update(self, value: float) -> bool:
        """Record a new metric value; returns whether to keep training."""
        improved = (self.best is None
                    or (self.mode == "min" and value < self.best - self.min_delta)
                    or (self.mode == "max" and value > self.best + self.min_delta))
        if improved:
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
        return self.stale < self.patience

    @property
    def should_stop(self) -> bool:
        return self.stale >= self.patience


@dataclass
class LearningCurve:
    """Per-epoch metric record with convenience accessors."""

    epochs: list[dict[str, float]] = field(default_factory=list)

    def record(self, **metrics: float) -> None:
        self.epochs.append(dict(metrics))

    def series(self, key: str) -> list[float]:
        """All recorded values of one metric.

        Raises:
            DataError: If an epoch is missing the metric (matching
                :meth:`best_epoch`, which also raises ``DataError`` —
                the old ``KeyError`` leaked an implementation detail).
        """
        values: list[float] = []
        for position, epoch in enumerate(self.epochs):
            try:
                values.append(epoch[key])
            except KeyError:
                recorded = ", ".join(sorted(epoch)) or "<none>"
                raise DataError(
                    f"metric {key!r} missing from epoch {position} "
                    f"(recorded: {recorded})") from None
        return values

    def best_epoch(self, key: str, mode: str = "min") -> int:
        """Index of the best epoch by a metric."""
        values = self.series(key)
        if not values:
            raise DataError("no epochs recorded")
        array = np.asarray(values)
        return int(np.argmin(array) if mode == "min" else np.argmax(array))


def train_seed(master_seed: int, component: str) -> np.random.Generator:
    """Convenience wrapper over :func:`repro.utils.rng.spawn_rng` for
    trainer code."""
    return spawn_rng(master_seed, "training", component)
