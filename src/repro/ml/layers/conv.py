"""1-D convolution over token sequences ("wide CNN" of Figs 6 and 8)."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..init import xavier_uniform
from ..module import Module, Parameter
from ..tensor import Tensor, custom_op


class Conv1d(Module):
    """Same-padded 1-D convolution over ``(batch, time, in_dim)``.

    Implemented as an im2col + matmul with a hand-written backward pass,
    which is far cheaper than composing it from primitive autograd ops.

    Args:
        in_dim: Input feature dimension.
        out_dim: Number of output channels.
        kernel_size: Window width (odd, so "same" padding is symmetric).
    """

    def __init__(self, in_dim: int, out_dim: int, kernel_size: int,
                 rng: np.random.Generator):
        super().__init__()
        if kernel_size % 2 == 0 or kernel_size <= 0:
            raise ShapeError(f"kernel_size must be a positive odd int, got {kernel_size}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.kernel_size = kernel_size
        fan_in = in_dim * kernel_size
        self.weight = Parameter(
            xavier_uniform(rng, fan_in, out_dim, shape=(fan_in, out_dim)))
        self.bias = Parameter(np.zeros(out_dim))

    def _im2col(self, data: np.ndarray) -> np.ndarray:
        batch, time, dim = data.shape
        half = self.kernel_size // 2
        padded = np.pad(data, ((0, 0), (half, half), (0, 0)))
        cols = np.empty((batch, time, self.kernel_size * dim))
        for offset in range(self.kernel_size):
            cols[:, :, offset * dim:(offset + 1) * dim] = padded[:, offset:offset + time, :]
        return cols

    def forward(self, x: Tensor) -> Tensor:
        """Convolve; output shape ``(batch, time, out_dim)``."""
        if x.ndim != 3 or x.shape[2] != self.in_dim:
            raise ShapeError(
                f"Conv1d expects (batch, time, {self.in_dim}), got {x.shape}")
        batch, time, dim = x.shape
        cols = self._im2col(x.data)
        out = cols @ self.weight.data + self.bias.data
        weight, bias, kernel = self.weight, self.bias, self.kernel_size

        def backward(grad: np.ndarray) -> None:
            flat_cols = cols.reshape(-1, kernel * dim)
            flat_grad = grad.reshape(-1, weight.data.shape[1])
            weight._accumulate(flat_cols.T @ flat_grad)
            bias._accumulate(flat_grad.sum(axis=0))
            if x.requires_grad:
                grad_cols = flat_grad @ weight.data.T
                grad_cols = grad_cols.reshape(batch, time, kernel * dim)
                half = kernel // 2
                grad_padded = np.zeros((batch, time + 2 * half, dim))
                for offset in range(kernel):
                    grad_padded[:, offset:offset + time, :] += \
                        grad_cols[:, :, offset * dim:(offset + 1) * dim]
                x._accumulate(grad_padded[:, half:half + time, :])

        return custom_op((x, weight, bias), out, backward)
