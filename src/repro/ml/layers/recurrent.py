"""LSTM and BiLSTM encoders (batch-first).

The paper uses BiLSTM encoders in four of its five models (Figs 4, 5, 6).
Sequences here are short (concepts average 2-3 words; titles ~10), so a
straightforward per-timestep loop through the autograd engine is fast
enough.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..init import xavier_uniform
from ..module import Module, Parameter
from ..tensor import Tensor, concat, stack


class LSTM(Module):
    """Single-direction LSTM over ``(batch, time, dim)`` inputs.

    Gate order in the packed weight matrices is ``[input, forget, cell,
    output]``.  The forget-gate bias is initialised to 1.0, the standard
    trick for stable early training.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(
            xavier_uniform(rng, input_dim, 4 * hidden_dim))
        self.w_hidden = Parameter(
            xavier_uniform(rng, hidden_dim, 4 * hidden_dim))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim:2 * hidden_dim] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor) -> Tensor:
        """Encode a batch of sequences.

        Args:
            x: Tensor of shape ``(batch, time, input_dim)``.

        Returns:
            Hidden states of shape ``(batch, time, hidden_dim)``.
        """
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ShapeError(
                f"LSTM expects (batch, time, {self.input_dim}), got {x.shape}")
        batch, time, _ = x.shape
        h_dim = self.hidden_dim
        h = Tensor(np.zeros((batch, h_dim)))
        c = Tensor(np.zeros((batch, h_dim)))
        outputs: list[Tensor] = []
        for t in range(time):
            x_t = x[:, t, :]
            z = x_t @ self.w_input + h @ self.w_hidden + self.bias
            i_gate = z[:, 0:h_dim].sigmoid()
            f_gate = z[:, h_dim:2 * h_dim].sigmoid()
            g_cell = z[:, 2 * h_dim:3 * h_dim].tanh()
            o_gate = z[:, 3 * h_dim:4 * h_dim].sigmoid()
            c = f_gate * c + i_gate * g_cell
            h = o_gate * c.tanh()
            outputs.append(h)
        return stack(outputs, axis=1)


class BiLSTM(Module):
    """Bidirectional LSTM; outputs forward and backward states concatenated.

    Args:
        input_dim: Input feature dimension.
        hidden_dim: Hidden size *per direction*; the output feature dimension
            is ``2 * hidden_dim``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.output_dim = 2 * hidden_dim

    def forward(self, x: Tensor) -> Tensor:
        """Encode ``(batch, time, dim)`` into ``(batch, time, 2*hidden)``."""
        time = x.shape[1]
        reverse = np.arange(time - 1, -1, -1)
        fwd = self.forward_lstm(x)
        bwd = self.backward_lstm(x[:, reverse, :])
        bwd = bwd[:, reverse, :]
        return concat([fwd, bwd], axis=2)
