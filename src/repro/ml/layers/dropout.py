"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from ..module import Module
from ..tensor import Tensor


class Dropout(Module):
    """Randomly zeroes features during training; identity in eval mode.

    Args:
        rate: Drop probability in [0, 1).
        rng: Generator for the drop masks.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
