"""Trainable embedding lookup table."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..init import normal
from ..module import Module, Parameter
from ..tensor import Tensor


class Embedding(Module):
    """Maps integer ids to dense vectors.

    Args:
        num_embeddings: Vocabulary size.
        dim: Embedding dimension.
        rng: Generator for initialisation.
        pretrained: Optional ``(num_embeddings, dim)`` matrix to start from
            (e.g. SGNS vectors standing in for the paper's GloVe).
        frozen: If True the table is excluded from gradient updates.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 pretrained: np.ndarray | None = None, frozen: bool = False):
        super().__init__()
        if pretrained is not None:
            pretrained = np.asarray(pretrained, dtype=np.float64)
            if pretrained.shape != (num_embeddings, dim):
                raise ShapeError(
                    f"pretrained shape {pretrained.shape} != "
                    f"({num_embeddings}, {dim})")
            table = pretrained.copy()
        else:
            table = normal(rng, (num_embeddings, dim), std=0.1)
        self.weight = Parameter(table)
        if frozen:
            self.weight.requires_grad = False
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ShapeError(
                f"embedding ids out of range [0, {self.num_embeddings})")
        return self.weight.gather_rows(ids)
