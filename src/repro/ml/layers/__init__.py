"""Neural-network layers built on the autograd Tensor."""

from .linear import Linear, MLP
from .embedding import Embedding
from .recurrent import LSTM, BiLSTM
from .conv import Conv1d
from .attention import AdditiveSelfAttention
from .dropout import Dropout

__all__ = [
    "Linear", "MLP", "Embedding", "LSTM", "BiLSTM", "Conv1d",
    "AdditiveSelfAttention", "Dropout",
]
