"""Additive self-attention, as used throughout the paper's encoders."""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..module import Module
from ..tensor import Tensor
from .linear import Linear


class AdditiveSelfAttention(Module):
    """Token-pair additive attention over a sequence.

    For input ``H = (batch, time, dim)`` it computes pairwise scores
    ``e_ij = v^T tanh(W1 h_i + W2 h_j)``, row-normalises them with softmax,
    and returns context-mixed states ``H' = softmax(E) @ H`` — letting each
    word adjust its representation by looking at its neighbours, the role
    self-attention plays in Figs 5, 6 and 8.
    """

    def __init__(self, dim: int, attention_dim: int, rng: np.random.Generator):
        super().__init__()
        self.query = Linear(dim, attention_dim, rng, bias=False)
        self.key = Linear(dim, attention_dim, rng, bias=False)
        self.score = Linear(attention_dim, 1, rng, bias=False)

    def forward(self, hidden: Tensor) -> Tensor:
        """Return contextualised states with the same shape as the input."""
        if hidden.ndim != 3:
            raise ShapeError(f"expected (batch, time, dim), got {hidden.shape}")
        batch, time, dim = hidden.shape
        queries = self.query(hidden)  # (B, T, A)
        keys = self.key(hidden)       # (B, T, A)
        # Broadcast to all pairs: (B, T, 1, A) + (B, 1, T, A).
        attn_dim = queries.shape[2]
        q_expanded = queries.reshape(batch, time, 1, attn_dim)
        k_expanded = keys.reshape(batch, 1, time, attn_dim)
        energies = self.score((q_expanded + k_expanded).tanh())
        energies = energies.reshape(batch, time, time)
        weights = energies.softmax(axis=2)
        return weights @ hidden
