"""Affine layers: Linear and a small MLP convenience stack."""

from __future__ import annotations

import numpy as np

from ..init import xavier_uniform
from ..module import Module, Parameter
from ..tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the last axis.

    Args:
        in_dim: Input feature dimension.
        out_dim: Output feature dimension.
        rng: Generator for weight initialisation.
        bias: Whether to add a bias term.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(xavier_uniform(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


_ACTIVATIONS = {
    "tanh": Tensor.tanh,
    "relu": Tensor.relu,
    "sigmoid": Tensor.sigmoid,
}


class MLP(Module):
    """A stack of Linear layers with a fixed nonlinearity between them.

    The final layer has no activation (it produces logits/scores).

    Args:
        dims: Layer widths including input and output, e.g. ``[64, 32, 1]``.
        rng: Generator for weight initialisation.
        activation: One of ``tanh``, ``relu``, ``sigmoid``.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activation: str = "tanh"):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.layers = [Linear(a, b, rng) for a, b in zip(dims[:-1], dims[1:])]
        self._activation = _ACTIVATIONS[activation]

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self._activation(x)
        return x
