"""Save/load model parameters as .npz archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module


def save_module(module: Module, path: str | Path) -> None:
    """Write a module's state dict to an ``.npz`` file."""
    state = module.state_dict()
    np.savez(Path(path), **state)


def load_module(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_module` into ``module``.

    Raises:
        KeyError: If the archive is missing a parameter the module expects.
    """
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
