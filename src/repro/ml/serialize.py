"""Save/load model parameters: .npz archives and JSON-able state records.

Two serialisation faces live here:

- the original ``.npz`` archive (:func:`save_module` / :func:`load_module`)
  for offline experiment checkpoints;
- JSON-serialisable *state records* (:func:`module_state_record` /
  :func:`load_module_state`) used by the serving layer to embed trained
  model weights in a versioned net snapshot
  (:func:`repro.kg.serialize.save_snapshot`).  A record carries a
  fingerprint of the module's architecture (parameter names + shapes,
  plus an arbitrary config dict), and loading validates it first — weights
  can never be silently poured into a mismatched architecture.

``save_module``/``load_module`` normalise the ``.npz`` suffix on both
sides: ``numpy.savez`` silently *appends* ``.npz`` when the target lacks
it, so before the fix ``save_module(m, "model")`` wrote ``model.npz``
while ``load_module(m, "model")`` looked for a file called ``model`` and
raised ``FileNotFoundError``.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import DataError
from .module import Module

#: Parameter arrays travel as little-endian float64 bytes inside records.
_DTYPE = "<f8"


def _normalized(path: str | Path) -> Path:
    """``path`` with the ``.npz`` suffix ``numpy.savez`` would append."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_module(module: Module, path: str | Path) -> Path:
    """Write a module's state dict to an ``.npz`` file.

    Returns:
        The path actually written (``.npz`` appended when missing, which
        is what ``numpy.savez`` does anyway — normalising here keeps
        :func:`load_module` symmetric with suffixless paths).
    """
    path = _normalized(path)
    state = module.state_dict()
    np.savez(path, **state)
    return path


def load_module(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_module` into ``module``.

    Accepts the same path that was passed to :func:`save_module`, with or
    without the ``.npz`` suffix.

    Raises:
        KeyError: If the archive is missing a parameter the module expects.
    """
    with np.load(_normalized(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


# --------------------------------------------------------- JSON state records
def state_to_jsonable(state: Mapping[str, np.ndarray]) -> dict[str, Any]:
    """A state dict as a JSON-serialisable payload (exact float64 bytes).

    Arrays travel as base64 little-endian float64, so a round trip through
    :func:`state_from_jsonable` is bit-identical — a snapshot-restored
    model computes exactly what the in-memory one did.
    """
    payload: dict[str, Any] = {}
    for name, array in state.items():
        data = np.ascontiguousarray(array, dtype=_DTYPE)
        payload[name] = {
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }
    return payload


def state_from_jsonable(payload: Mapping[str, Any]) -> dict[str, np.ndarray]:
    """Rebuild a state dict from :func:`state_to_jsonable` output.

    Raises:
        DataError: If the payload is malformed (missing fields, byte
            count disagreeing with the recorded shape, bad base64).
    """
    state: dict[str, np.ndarray] = {}
    for name, record in payload.items():
        try:
            raw = base64.b64decode(record["data"])
            shape = tuple(int(dim) for dim in record["shape"])
            array = np.frombuffer(raw, dtype=_DTYPE).astype(np.float64)
            state[str(name)] = array.reshape(shape)
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(
                f"malformed parameter record {name!r}: {error}"
            ) from error
    return state


def module_fingerprint(module: Module,
                       config: Mapping[str, Any] | None = None) -> str:
    """Digest of a module's architecture (parameter names/shapes + config).

    Two modules share a fingerprint exactly when their parameter trees
    (dotted names and shapes) and the supplied config dict agree — the
    precondition for a state record of one to load into the other.
    """
    spec = {
        "params": sorted(
            (name, list(param.shape))
            for name, param in module.named_parameters()
        ),
        "config": dict(config or {}),
    }
    digest = hashlib.sha256(
        json.dumps(spec, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def module_state_record(module: Module,
                        config: Mapping[str, Any] | None = None
                        ) -> dict[str, Any]:
    """A self-validating, JSON-serialisable record of a module's weights.

    Args:
        module: The trained module.
        config: Arbitrary JSON-able facts about how the module was built
            (model kind, hyperparameters...); folded into the fingerprint
            so a load into a differently-configured module fails loudly.
    """
    config = dict(config or {})
    return {
        "fingerprint": module_fingerprint(module, config),
        "config": config,
        "params": state_to_jsonable(module.state_dict()),
    }


def load_module_state(module: Module, record: Mapping[str, Any]) -> None:
    """Load a :func:`module_state_record` into ``module``, validating first.

    Raises:
        DataError: If the record is malformed, or its fingerprint does not
            match ``module``'s architecture + the record's config — i.e.
            the weights were trained on a different model shape.
    """
    try:
        recorded = str(record["fingerprint"])
        config = dict(record.get("config") or {})
        params = record["params"]
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed module state record: {error}") from error
    expected = module_fingerprint(module, config)
    if recorded != expected:
        raise DataError(
            f"model state fingerprint {recorded!r} does not match the "
            f"target module's architecture fingerprint {expected!r}; "
            "refusing to load mismatched weights"
        )
    state = state_from_jsonable(params)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise DataError(
            f"module state record does not fit the module: {error}"
        ) from error
