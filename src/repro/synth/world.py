"""The ground-truth world model.

This is the reproduction's stand-in for "reality" at Alibaba: which
shopping scenarios exist, which items they require, and which concept
phrases are plausible.  Everything downstream — corpus text, click logs,
annotator labels — is derived from it, so the learning problems the
paper's five models face (ambiguity, semantic drift, implausible
combinations) are planted here deliberately:

- ``EVENT_NEEDS`` encodes *semantic drift*: charcoal is needed for an
  "outdoor barbecue" yet has nothing to do with the primitive concept
  "outdoor" (Section 6's motivating example);
- the ``*_BAD`` tables encode commonsense *implausibility* ("sexy" never
  describes baby clothing — Section 5.1 criterion 3);
- concept generation mirrors Table 1's patterns and produces both good
  concepts (with gold interpretations) and defective ones labelled with
  the criterion they violate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .lexicon import Lexicon, NON_COMMERCE_WORDS

# ------------------------------------------------------------- ground truth
#: Event -> category surfaces needed for it (drives semantic drift).
EVENT_NEEDS: dict[str, tuple[str, ...]] = {
    "barbecue": ("grill", "charcoal", "skewers", "tongs", "grill-brush",
                 "apron", "beef", "butter"),
    "baking": ("oven", "baking-tray", "whisk", "mixer", "flour", "butter",
               "oven-mitts", "strainer", "egg-scrambler"),
    "camping": ("tent", "sleeping-bag", "flashlight", "backpack", "stove",
                "picnic-mat"),
    "swimming": ("swimsuit", "goggles", "swim-cap", "float", "swim-ring",
                 "towel"),
    "traveling": ("suitcase", "backpack", "charger", "hat", "sunscreen",
                  "neck-pillow"),
    "skiing": ("gloves", "scarf", "coat", "boots", "goggles"),
    "picnic": ("picnic-mat", "picnic-basket", "juice", "snacks", "blanket"),
    "wedding": ("dress", "suit", "vase", "candles", "balloons"),
    "party": ("balloons", "snacks", "juice", "candles", "plates"),
    "hiking": ("boots", "backpack", "flashlight", "hat", "water-bottle"),
    "fishing": ("fishing-rod", "bait", "fishing-line", "folding-stool"),
    "gardening": ("shovel", "hose", "planter", "gloves", "seeds"),
    "yoga": ("yoga-mat", "leggings", "water-bottle", "towel"),
    "housewarming": ("vase", "rug", "candles", "mugs"),
    "commuting": ("earphones", "backpack", "thermos"),
    "bathing": ("towel", "bathrobe", "shower-gel", "shampoo"),
    "graduation": ("gifts", "greeting-cards", "balloons"),
}

#: Function -> category surfaces that *provide* it (for "keep warm for
#: kids": blankets provide warmth even if the word "warm" is absent).
FUNCTION_PROVIDERS: dict[str, tuple[str, ...]] = {
    "warm": ("coat", "sweater", "blanket", "gloves", "scarf", "heater",
             "quilt", "hat"),
    "anti-lost": ("locator", "tracker", "smartwatch"),
    "waterproof": ("boots", "jacket", "tent", "phone-case"),
    "sun-protective": ("sunscreen", "hat", "sunglasses"),
    "non-slip": ("slippers", "yoga-mat", "boots"),
    "portable": ("flashlight", "charger", "fan"),
    "noise-cancelling": ("earphones",),
    "breathable": ("sneakers", "t-shirt"),
    "rechargeable": ("flashlight", "fan", "massager"),
    "insulated": ("kettle", "thermos", "lunch-box"),
    "quick-dry": ("swimsuit", "t-shirt", "towel"),
    "foldable": ("table", "chair", "fan", "umbrella"),
}

#: Holiday -> typical gift categories.
HOLIDAY_GIFTS: dict[str, tuple[str, ...]] = {
    "christmas": ("plush-toy", "chocolate", "candles", "scarf", "mugs",
                  "gifts"),
    "halloween": ("candy", "doll", "lantern", "gifts"),
    "mid-autumn-festival": ("moon-cakes", "tea", "gifts", "lantern"),
    "new-year": ("wine", "tea", "greeting-cards", "gifts"),
    "valentines-day": ("chocolate", "candles", "greeting-cards", "gifts"),
    "spring-festival": ("snacks", "tea", "wine", "gifts"),
}

#: Nature pest -> category surfaces that solve it ("what is preventing the
#: olds from getting lost" family of problem queries).
PEST_SOLUTIONS: dict[str, tuple[str, ...]] = {
    "raccoon": ("trap", "fence"),
    "mosquito": ("mosquito-net", "repellent"),
    "mouse": ("trap",),
    "pigeon": ("fence",),
}

#: Audience -> leaf classes whose items typically target them.
AUDIENCE_CLASSES: dict[str, tuple[str, ...]] = {
    "kids": ("Toys", "Clothing", "Shoes", "Snacks", "BabyCare"),
    "baby": ("BabyCare", "Toys", "Clothing"),
    "infants": ("BabyCare", "Toys"),
    "grandpa": ("HealthCare", "Clothing", "Beverage", "Wearables"),
    "grandma": ("HealthCare", "Clothing", "Beverage", "Wearables"),
    "olds": ("HealthCare", "Wearables", "Clothing"),
    "men": ("Clothing", "Shoes", "Phones", "Fitness"),
    "women": ("Clothing", "Shoes", "Skincare", "Accessory"),
    "students": ("Phones", "Accessory", "Clothing", "Snacks"),
    "teenagers": ("Phones", "Toys", "Clothing", "Snacks"),
    "family": ("Furniture", "Appliances", "Tableware", "Snacks"),
    "couples": ("Decor", "Tableware", "Accessory"),
    "pets": ("PetGear",),
    "dogs": ("PetGear",),
    "cats": ("PetGear",),
}

#: Categories inappropriate for young audiences (clarity/plausibility).
_ADULT_ONLY_CATEGORIES = frozenset({"wine"})
_YOUNG_AUDIENCES = frozenset({"kids", "baby", "infants", "teenagers"})

# Incompatibility tables (plausibility ground truth).
FUNCTION_EVENT_BAD = frozenset({
    ("warm", "swimming"), ("insulated", "swimming"),
    ("noise-cancelling", "swimming"), ("warm", "yoga"),
})
STYLE_AUDIENCE_BAD = frozenset({
    ("sexy", "baby"), ("sexy", "kids"), ("sexy", "infants"), ("sexy", "pets"),
})
LOCATION_EVENT_BAD = frozenset({
    ("classroom", "bathing"), ("classroom", "barbecue"),
    ("office", "swimming"), ("beach", "skiing"), ("balcony", "swimming"),
    ("indoor", "fishing"),
})
SEASON_EVENT_BAD = frozenset({("summer", "skiing")})
CATEGORY_SEASON_BAD = frozenset({
    ("coat", "summer"), ("down coat", "summer"), ("sweater", "summer"),
    ("swimsuit", "winter"), ("swimsuit", "spring"), ("swimsuit", "autumn"),
    ("quilt", "summer"), ("sandals", "winter"),
})

#: Function -> leaf classes it can sensibly describe.
FUNCTION_CLASSES: dict[str, tuple[str, ...]] = {
    "waterproof": ("Clothing", "Shoes", "Phones", "CampingGear", "Wearables",
                   "Accessory"),
    "windproof": ("Clothing", "Accessory", "CampingGear"),
    "warm": ("Clothing", "Shoes", "Accessory", "Bedding", "Appliances"),
    "breathable": ("Clothing", "Shoes", "Bedding"),
    "non-slip": ("Shoes", "Fitness", "BathSupplies", "Tableware"),
    "portable": ("Phones", "Appliances", "CampingGear", "Fitness",
                 "Furniture"),
    "foldable": ("Furniture", "Appliances", "CampingGear", "Accessory"),
    "rechargeable": ("Phones", "Appliances", "Wearables", "CampingGear"),
    "insulated": ("Tableware", "Cookware", "CampingGear"),
    "anti-lost": ("Wearables", "Phones", "Accessory"),
    "noise-cancelling": ("Phones",),
    "quick-dry": ("Clothing", "BathSupplies", "SwimGear"),
    "sun-protective": ("Skincare", "Accessory", "Clothing"),
    "moisture-proof": ("Bedding", "CampingGear", "Furniture"),
}

#: Leaf classes where Style/Season fashion patterns make sense.
_FASHION_CLASSES = frozenset({"Clothing", "Shoes", "Accessory", "Decor",
                              "Bedding", "Furniture", "Tableware"})

_FILLER_WORDS = frozenset({"for", "in", "and", "keep", "essentials"})


@dataclass(frozen=True)
class ConceptPart:
    """A primitive-concept mention inside an e-commerce concept.

    Attributes:
        surface: Surface form (may be multi-word, e.g. ``trench coat``).
        domain: The *intended* domain of this mention (ambiguous surfaces
            have one intended sense per concept).
    """

    surface: str
    domain: str


@dataclass(frozen=True)
class ConceptSpec:
    """A candidate e-commerce concept with ground truth attached.

    Attributes:
        text: The phrase.
        parts: Gold interpretation — ordered primitive-concept mentions.
            Empty for defective candidates whose structure is broken.
        pattern: Name of the generation pattern (Table 1 analogue).
        good: Whether the phrase satisfies all five criteria of Section 5.1.
        defect: For bad candidates, which criterion fails: ``implausible``,
            ``incoherent``, ``nonsense``, ``unclear`` or ``typo``.
    """

    text: str
    parts: tuple[ConceptPart, ...]
    pattern: str
    good: bool
    defect: str = ""

    @property
    def tokens(self) -> tuple[str, ...]:
        return tuple(self.text.split())

    def iob_labels(self) -> list[str]:
        """Gold IOB domain labels per token (``O`` for filler words).

        Raises:
            DataError: If parts do not align with the text (defective
                candidates have no gold labels).
        """
        labels = ["O"] * len(self.tokens)
        tokens = list(self.tokens)
        cursor = 0
        for part in self.parts:
            part_tokens = part.surface.split()
            found = -1
            for start in range(cursor, len(tokens) - len(part_tokens) + 1):
                if tokens[start:start + len(part_tokens)] == part_tokens:
                    found = start
                    break
            if found < 0:
                raise DataError(
                    f"part {part.surface!r} not found in {self.text!r}")
            labels[found] = f"B-{part.domain}"
            for offset in range(1, len(part_tokens)):
                labels[found + offset] = f"I-{part.domain}"
            cursor = found + len(part_tokens)
        return labels


class World:
    """Ground-truth oracle over scenarios, plausibility and concepts.

    Args:
        lexicon: The world's vocabulary.
        seed: Master seed; concept sampling derives child streams from it.
    """

    def __init__(self, lexicon: Lexicon, seed: int = 7):
        self.lexicon = lexicon
        self.seed = seed
        self._category_class: dict[str, str] = {}
        self._category_head: dict[str, str] = {}
        surfaces = set(lexicon.domain_surfaces("Category"))
        for entry in lexicon.domain_entries("Category"):
            self._category_class[entry.surface] = entry.class_name
            # The head is the suffix head noun ("trench coat" -> "coat"),
            # NOT the isA hypernym: cover-term hypernyms like "top" share
            # no text with their hyponyms and must not leak into titles.
            last_word = entry.surface.split()[-1]
            if " " in entry.surface and last_word in surfaces:
                self._category_head[entry.surface] = last_word
            else:
                self._category_head[entry.surface] = entry.surface

    # ----------------------------------------------------------- item logic
    def category_class(self, category: str) -> str:
        """Leaf class of a category surface.

        Raises:
            DataError: For a surface that is not a Category concept.
        """
        try:
            return self._category_class[category]
        except KeyError:
            raise DataError(f"{category!r} is not a Category surface") from None

    def category_head(self, category: str) -> str:
        """Head noun of a (possibly compound) category surface."""
        try:
            return self._category_head[category]
        except KeyError:
            raise DataError(f"{category!r} is not a Category surface") from None

    def functions_for_class(self, leaf_class: str) -> list[str]:
        """Functions that may describe items of a leaf class."""
        return [function for function, classes in FUNCTION_CLASSES.items()
                if leaf_class in classes]

    def events_needing(self, category: str) -> list[str]:
        """Events whose kit includes this category (via its head noun)."""
        head = self.category_head(category)
        return [event for event, needs in EVENT_NEEDS.items()
                if head in needs or category in needs]

    def audiences_for_class(self, leaf_class: str) -> list[str]:
        """Audiences typically targeted by items of a leaf class."""
        return [audience for audience, classes in AUDIENCE_CLASSES.items()
                if leaf_class in classes]

    # --------------------------------------------------------- plausibility
    def compatible(self, parts: tuple[ConceptPart, ...]) -> tuple[bool, str]:
        """Check commonsense compatibility of a part combination.

        Returns:
            (ok, reason): ``reason`` names the violated rule when not ok.
        """
        by_domain: dict[str, list[str]] = {}
        for part in parts:
            by_domain.setdefault(part.domain, []).append(part.surface)
        styles = by_domain.get("Style", [])
        if len(styles) > 1:
            return False, "two styles"
        if len(by_domain.get("Audience", [])) > 1:
            return False, "two audiences"
        events = by_domain.get("Event", [])
        functions = by_domain.get("Function", [])
        locations = by_domain.get("Location", [])
        seasons = [t for t in by_domain.get("Time", [])
                   if self._is_season(t)]
        audiences = by_domain.get("Audience", [])
        categories = by_domain.get("Category", [])
        for function in functions:
            for event in events:
                if (function, event) in FUNCTION_EVENT_BAD:
                    return False, f"function-event: {function}/{event}"
        for style in styles:
            for audience in audiences:
                if (style, audience) in STYLE_AUDIENCE_BAD:
                    return False, f"style-audience: {style}/{audience}"
        for location in locations:
            for event in events:
                if (location, event) in LOCATION_EVENT_BAD:
                    return False, f"location-event: {location}/{event}"
        for season in seasons:
            for event in events:
                if (season, event) in SEASON_EVENT_BAD:
                    return False, f"season-event: {season}/{event}"
        for category in categories:
            head = self._category_head.get(category, category)
            for season in seasons:
                if (head, season) in CATEGORY_SEASON_BAD or \
                        (category, season) in CATEGORY_SEASON_BAD:
                    return False, f"category-season: {category}/{season}"
            for function in functions:
                leaf = self._category_class.get(category)
                if leaf and leaf not in FUNCTION_CLASSES.get(function, ()):
                    return False, f"function-category: {function}/{category}"
            for audience in audiences:
                if head in _ADULT_ONLY_CATEGORIES and audience in _YOUNG_AUDIENCES:
                    return False, f"audience-category: {audience}/{category}"
        return True, ""

    def _is_season(self, surface: str) -> bool:
        return any(entry.class_name == "Season"
                   for entry in self.lexicon.senses(surface))

    # ----------------------------------------------------- concept sampling
    def sample_concepts(self, rng: np.random.Generator, n_good: int,
                        n_bad: int) -> list[ConceptSpec]:
        """Sample good and bad concept candidates (shuffled together)."""
        good = self.sample_good_concepts(rng, n_good)
        bad = self.sample_bad_concepts(rng, n_bad)
        combined = good + bad
        rng.shuffle(combined)
        return combined

    def sample_good_concepts(self, rng: np.random.Generator,
                             count: int) -> list[ConceptSpec]:
        """Sample ``count`` distinct good concepts across all patterns."""
        produced: dict[str, ConceptSpec] = {}
        attempts = 0
        generators = (
            self._gen_location_event, self._gen_gift, self._gen_func_cat_event,
            self._gen_style_season_cat, self._gen_event_in_location,
            self._gen_keep_function, self._gen_category_audience,
            self._gen_event_essentials, self._gen_pest_control,
        )
        while len(produced) < count and attempts < count * 60:
            attempts += 1
            generator = generators[int(rng.integers(len(generators)))]
            spec = generator(rng)
            if spec is not None and spec.good and spec.text not in produced:
                produced[spec.text] = spec
        if len(produced) < count:
            raise DataError(
                f"could only generate {len(produced)}/{count} good concepts; "
                "the pattern space is exhausted at this scale")
        return list(produced.values())

    def sample_bad_concepts(self, rng: np.random.Generator,
                            count: int) -> list[ConceptSpec]:
        """Sample ``count`` distinct bad candidates across all defect types."""
        produced: dict[str, ConceptSpec] = {}
        attempts = 0
        makers = (self._bad_implausible, self._bad_incoherent,
                  self._bad_nonsense, self._bad_unclear, self._bad_typo)
        while len(produced) < count and attempts < count * 80:
            attempts += 1
            maker = makers[int(rng.integers(len(makers)))]
            spec = maker(rng)
            if spec is not None and not spec.good and spec.text not in produced:
                produced[spec.text] = spec
        if len(produced) < count:
            raise DataError(
                f"could only generate {len(produced)}/{count} bad concepts")
        return list(produced.values())

    # Pattern generators.  Each returns a ConceptSpec or None (retry).
    def _pick(self, rng: np.random.Generator, options: list[str]) -> str:
        return options[int(rng.integers(len(options)))]

    def _surfaces(self, domain: str, class_name: str | None = None) -> list[str]:
        entries = self.lexicon.domain_entries(domain)
        if class_name is not None:
            entries = [e for e in entries if e.class_name == class_name]
        return [e.surface for e in entries]

    def _finish(self, text: str, parts: list[ConceptPart],
                pattern: str) -> ConceptSpec:
        ok, reason = self.compatible(tuple(parts))
        return ConceptSpec(text, tuple(parts), pattern, good=ok,
                           defect="" if ok else "implausible")

    def _gen_location_event(self, rng: np.random.Generator) -> ConceptSpec:
        location = self._pick(rng, self._surfaces("Location", "Scene"))
        event = self._pick(rng, self._surfaces("Event"))
        parts = [ConceptPart(location, "Location"), ConceptPart(event, "Event")]
        return self._finish(f"{location} {event}", parts, "location-event")

    def _gen_gift(self, rng: np.random.Generator) -> ConceptSpec:
        holiday = self._pick(rng, self._surfaces("Time", "Holiday"))
        audience = self._pick(rng, self._surfaces("Audience", "Human"))
        parts = [ConceptPart(holiday, "Time"),
                 ConceptPart("gifts", "Category"),
                 ConceptPart(audience, "Audience")]
        return self._finish(f"{holiday} gifts for {audience}", parts, "gift")

    def _gen_func_cat_event(self, rng: np.random.Generator) -> ConceptSpec:
        function = self._pick(rng, self._surfaces("Function"))
        category = self._pick(rng, self._surfaces("Category"))
        event = self._pick(rng, self._surfaces("Event"))
        parts = [ConceptPart(function, "Function"),
                 ConceptPart(category, "Category"),
                 ConceptPart(event, "Event")]
        return self._finish(f"{function} {category} for {event}", parts,
                            "function-category-event")

    def _gen_style_season_cat(self, rng: np.random.Generator) -> ConceptSpec | None:
        style = self._pick(rng, self._surfaces("Style"))
        season = self._pick(rng, self._surfaces("Time", "Season"))
        category = self._pick(rng, self._surfaces("Category"))
        if self._category_class[category] not in _FASHION_CLASSES:
            return None
        parts = [ConceptPart(style, "Style"), ConceptPart(season, "Time"),
                 ConceptPart(category, "Category")]
        return self._finish(f"{style} {season} {category}", parts,
                            "style-season-category")

    def _gen_event_in_location(self, rng: np.random.Generator) -> ConceptSpec:
        event = self._pick(rng, self._surfaces("Event", "Action"))
        location = self._pick(rng, self._surfaces("Location", "Scene"))
        parts = [ConceptPart(event, "Event"), ConceptPart(location, "Location")]
        return self._finish(f"{event} in {location}", parts,
                            "event-in-location")

    def _gen_keep_function(self, rng: np.random.Generator) -> ConceptSpec | None:
        function = self._pick(rng, list(FUNCTION_PROVIDERS))
        audience = self._pick(rng, self._surfaces("Audience"))
        parts = [ConceptPart(function, "Function"),
                 ConceptPart(audience, "Audience")]
        return self._finish(f"keep {function} for {audience}", parts,
                            "keep-function-audience")

    def _gen_category_audience(self, rng: np.random.Generator) -> ConceptSpec:
        category = self._pick(rng, self._surfaces("Category"))
        audience = self._pick(rng, self._surfaces("Audience"))
        parts = [ConceptPart(category, "Category"),
                 ConceptPart(audience, "Audience")]
        return self._finish(f"{category} for {audience}", parts,
                            "category-audience")

    def _gen_event_essentials(self, rng: np.random.Generator) -> ConceptSpec:
        event = self._pick(rng, list(EVENT_NEEDS))
        parts = [ConceptPart(event, "Event")]
        return self._finish(f"{event} essentials", parts, "event-essentials")

    def _gen_pest_control(self, rng: np.random.Generator) -> ConceptSpec:
        pest = self._pick(rng, list(PEST_SOLUTIONS))
        parts = [ConceptPart(pest, "Nature")]
        return self._finish(f"get rid of {pest}", parts, "pest-control")

    # Defect makers.
    def _bad_implausible(self, rng: np.random.Generator) -> ConceptSpec | None:
        """Draw pattern candidates until one violates a compatibility rule."""
        for _ in range(40):
            generator = (self._gen_location_event, self._gen_func_cat_event,
                         self._gen_style_season_cat,
                         self._gen_event_in_location,
                         self._gen_category_audience)[int(rng.integers(5))]
            spec = generator(rng)
            if spec is not None and not spec.good:
                return spec
        return None

    def _bad_incoherent(self, rng: np.random.Generator) -> ConceptSpec | None:
        base = self._any_good(rng)
        tokens = list(base.tokens)
        if len(tokens) < 3:
            return None
        for _ in range(10):
            shuffled = list(tokens)
            rng.shuffle(shuffled)
            if shuffled != tokens:
                return ConceptSpec(" ".join(shuffled), (), base.pattern,
                                   good=False, defect="incoherent")
        return None

    _NONSENSE_SYLLABLES = ("blor", "quim", "zap", "fren", "dulo", "smee",
                           "crat", "vosh", "plin", "targ", "welp", "noz")

    def _bad_nonsense(self, rng: np.random.Generator) -> ConceptSpec:
        """No-e-commerce-meaning candidates: curated counter-examples
        ("hens lay eggs") mixed with open-set pseudo-words, so a classifier
        cannot simply memorise a closed nonsense vocabulary — it needs
        popularity/OOV evidence (the Wide side's job)."""
        length = int(rng.integers(2, 4))
        words = []
        for _ in range(length):
            if rng.random() < 0.5:
                words.append(self._pick(rng, list(NON_COMMERCE_WORDS)))
            else:
                syllables = [self._pick(rng, list(self._NONSENSE_SYLLABLES))
                             for _ in range(int(rng.integers(2, 4)))]
                words.append("".join(syllables))
        return ConceptSpec(" ".join(words), (), "nonsense", good=False,
                           defect="nonsense")

    def _bad_unclear(self, rng: np.random.Generator) -> ConceptSpec | None:
        category = self._pick(rng, self._surfaces("Category"))
        audiences = self._surfaces("Audience", "Human")
        first = self._pick(rng, audiences)
        second = self._pick(rng, audiences)
        if first == second:
            return None
        text = f"{category} for {first} and {second}"
        return ConceptSpec(text, (), "category-audience", good=False,
                           defect="unclear")

    def _bad_typo(self, rng: np.random.Generator) -> ConceptSpec | None:
        base = self._any_good(rng)
        tokens = list(base.tokens)
        candidates = [i for i, t in enumerate(tokens) if len(t) >= 4]
        if not candidates:
            return None
        position = candidates[int(rng.integers(len(candidates)))]
        word = list(tokens[position])
        swap = int(rng.integers(1, len(word) - 1))
        word[swap], word[swap - 1] = word[swap - 1], word[swap]
        corrupted = "".join(word)
        if corrupted == tokens[position]:
            return None
        tokens[position] = corrupted
        return ConceptSpec(" ".join(tokens), (), base.pattern, good=False,
                           defect="typo")

    def _any_good(self, rng: np.random.Generator) -> ConceptSpec:
        return self.sample_good_concepts(rng, 1)[0]
