"""Simulated click logs over concept cards.

The paper's matching training positives come from "strong matching rules
and user click logs of the running application on Taobao".  This simulator
shows each concept card to users alongside candidate items; users click
ground-truth-relevant items with high probability and irrelevant ones with
a small noise probability, so the resulting training pairs are realistic:
mostly right, a little wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.rng import spawn_rng
from .items import SynthItem, item_matches_concept
from .world import ConceptSpec, World


@dataclass(frozen=True)
class ClickEvent:
    """One impression: a concept card and an item, with the user's action."""

    concept_index: int
    item_index: int
    clicked: bool


def simulate_clicks(world: World, concepts: list[ConceptSpec],
                    items: list[SynthItem], impressions_per_concept: int = 30,
                    click_if_relevant: float = 0.85,
                    click_if_irrelevant: float = 0.03,
                    seed: int | None = None) -> list[ClickEvent]:
    """Simulate card impressions for every good concept.

    Args:
        world: Ground-truth world.
        concepts: Concept list (bad concepts get no impressions).
        items: Catalog.
        impressions_per_concept: Cards shown per concept.
        click_if_relevant: Click probability on a truly relevant item.
        click_if_irrelevant: Click probability on an irrelevant item.
        seed: Override for the world's master seed.
    """
    rng = spawn_rng(world.seed if seed is None else seed, "clicklog")
    events: list[ClickEvent] = []
    if not items:
        return events
    for concept_index, spec in enumerate(concepts):
        if not spec.good:
            continue
        relevant = [i for i, item in enumerate(items)
                    if item_matches_concept(world, item, spec)]
        for _ in range(impressions_per_concept):
            # Bias impressions toward relevant items, as a production
            # recall stage would.
            if relevant and rng.random() < 0.5:
                item_index = relevant[int(rng.integers(len(relevant)))]
            else:
                item_index = int(rng.integers(len(items)))
            is_relevant = item_index in set(relevant)
            probability = click_if_relevant if is_relevant else click_if_irrelevant
            events.append(ClickEvent(concept_index, item_index,
                                     bool(rng.random() < probability)))
    return events
