"""Candidate indexes for retrieval-then-verify net construction.

The paper never scores every item against every concept: candidates are
retrieved from inverted indexes first and only those are deep-matched
(Section 6; AliCG makes the same move for serving).  This module provides
the two indexes the build pipeline needs to stay near-linear:

- :class:`ConceptCandidateIndex` — inverted index from *required part
  surfaces* (category head, event, audience) to :class:`ConceptSpec`s, so
  the item layer only verifies ``item_matches_concept`` on candidates;
- :class:`PartSignatureIndex` — postings from part to concepts, replacing
  the O(n²) concept-isA double loop with subset lookups.

Both are exact accelerations: every concept the brute-force scan would
accept is guaranteed to be in the candidate set (see the per-class
docstrings for the argument), so build output is bit-identical.
"""

from __future__ import annotations

from .items import SynthItem
from .world import ConceptSpec

#: Domains usable as index keys, strongest discriminator first.  A part in
#: one of these domains matches an item only if its surface appears in an
#: enumerable, item-derived key set (see ``_item_keys``).
_KEY_DOMAINS = ("Category", "Event", "Audience")


def _key_of(spec: ConceptSpec) -> tuple[str, str] | None:
    """Pick one required part of ``spec`` as its index key.

    Preference order follows discriminative power: a category narrows
    candidates the most, then event, then audience.  The pseudo-category
    ``"gifts"`` matches *every* item (gift concepts constrain via their
    holiday/audience parts) so it is useless as a key and skipped.
    """
    for domain in _KEY_DOMAINS:
        for part in spec.parts:
            if part.domain != domain:
                continue
            if domain == "Category" and part.surface == "gifts":
                continue
            return (domain, part.surface)
    return None


def _item_keys(item: SynthItem) -> list[tuple[str, str]]:
    """Every index key under which ``item`` can match an indexed concept.

    This mirrors ``_part_matches`` exactly: a Category part matches via
    ``item.category`` or ``item.head``; an Event part via ``item.events``;
    an Audience part via ``item.audiences``.
    """
    keys = [("Category", item.category)]
    if item.head != item.category:
        keys.append(("Category", item.head))
    keys.extend(("Event", event) for event in item.events)
    keys.extend(("Audience", audience) for audience in item.audiences)
    return keys


class ConceptCandidateIndex:
    """Inverted index from required part surfaces to concepts.

    A good concept matches an item only if *all* of its parts match
    (:func:`~repro.synth.items.item_matches_concept`), so any single part
    is a necessary condition and can serve as an index key.  Concepts
    whose parts contain none of the key domains land in a small
    always-candidate bucket.  Candidate lists preserve the original
    concept order, so the verify loop consumes RNG draws in exactly the
    same sequence as a brute-force scan — indexed builds are
    reproducibly identical, not just equivalent.
    """

    def __init__(self, concepts: list[ConceptSpec]):
        self._position: dict[int, int] = {
            id(spec): i for i, spec in enumerate(concepts)}
        self._buckets: dict[tuple[str, str], list[ConceptSpec]] = {}
        self._always: list[ConceptSpec] = []
        self.n_indexed = 0
        for spec in concepts:
            if not spec.good or not spec.parts:
                continue  # can never match any item; drop at index time
            key = _key_of(spec)
            if key is None:
                self._always.append(spec)
            else:
                self._buckets.setdefault(key, []).append(spec)
                self.n_indexed += 1

    def candidates(self, item: SynthItem) -> list[ConceptSpec]:
        """Superset of the concepts that can match ``item``, in original
        concept order."""
        seen: set[int] = set()
        found: list[ConceptSpec] = list(self._always)
        seen.update(id(spec) for spec in found)
        for key in _item_keys(item):
            for spec in self._buckets.get(key, ()):
                if id(spec) not in seen:
                    seen.add(id(spec))
                    found.append(spec)
        found.sort(key=lambda spec: self._position[id(spec)])
        return found

    @property
    def n_always(self) -> int:
        """Size of the always-candidate bucket (unindexable concepts)."""
        return len(self._always)

    def stats(self) -> dict[str, int]:
        """Selectivity diagnostics for benchmark reports.

        ``largest_bucket`` bounds the per-item verify cost: an item pulls
        at most its keys' buckets plus the always-candidate set.
        """
        sizes = [len(bucket) for bucket in self._buckets.values()]
        return {"buckets": len(self._buckets),
                "indexed_concepts": self.n_indexed,
                "always_candidates": len(self._always),
                "largest_bucket": max(sizes, default=0)}


class PartSignatureIndex:
    """Part-posting index over concept signatures for isA discovery.

    A concept ``broad`` is a hypernym of ``narrow`` when ``broad``'s part
    signature is a non-empty strict subset of ``narrow``'s.  Every part of
    ``broad`` is then also a part of ``narrow``, so ``broad`` appears in
    the postings of at least one of ``narrow``'s parts — taking the union
    of those postings yields a complete candidate set without comparing
    all concept pairs.
    """

    def __init__(self, concepts: list[ConceptSpec]):
        self._position = {spec.text: i for i, spec in enumerate(concepts)}
        self.signatures: dict[str, frozenset[tuple[str, str]]] = {
            spec.text: frozenset((p.surface, p.domain) for p in spec.parts)
            for spec in concepts}
        self._postings: dict[tuple[str, str], list[str]] = {}
        for spec in concepts:
            for part in self.signatures[spec.text]:
                self._postings.setdefault(part, []).append(spec.text)

    def broader_than(self, narrow: str) -> list[str]:
        """Texts of concepts strictly broader than ``narrow`` (signature a
        non-empty strict subset), in original concept order."""
        signature = self.signatures[narrow]
        seen: set[str] = set()
        broader: list[str] = []
        for part in signature:
            for text in self._postings.get(part, ()):
                if text == narrow or text in seen:
                    continue
                seen.add(text)
                other = self.signatures[text]
                if other and other < signature:
                    broader.append(text)
        broader.sort(key=self._position.__getitem__)
        return broader
