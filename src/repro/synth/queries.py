"""Search-query generator.

Emits the three query families the paper's introduction describes:

- *exact-product* queries ("red dress", "zorvex sneakers") — the kind the
  CPV ontology already understands;
- *scenario* queries ("outdoor barbecue") — understood only through
  e-commerce concepts;
- *problem* queries ("get rid of raccoon", "keep warm for kids") — the
  "have a problem but no idea what items help" case.

Each query carries its family so the coverage experiment (Section 7.1)
can score the old and new ontologies against the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import spawn_rng
from .world import ConceptSpec, World


#: Emerging trend terms not (yet) in any ontology — the reason the paper
#: re-measures coverage every day "to detect new trends of user needs".
NOVEL_TERMS = ("glamping", "cottagecore", "hydro-dipping", "axe-throwing",
               "bullet-journaling", "van-life", "cold-plunge",
               "dopamine-decor", "quiet-luxury", "mushroom-lamp")


@dataclass(frozen=True)
class Query:
    """One search query with ground truth.

    Attributes:
        text: The query string.
        family: ``product``, ``scenario`` or ``problem``.
        concept_text: For scenario/problem queries, the e-commerce concept
            that satisfies them (empty for product queries).
    """

    text: str
    family: str
    concept_text: str = ""

    @property
    def tokens(self) -> tuple[str, ...]:
        return tuple(self.text.split())


def generate_queries(world: World, concepts: list[ConceptSpec], count: int,
                     seed: int | None = None,
                     scenario_fraction: float = 0.45,
                     problem_fraction: float = 0.15,
                     novelty_rate: float = 0.18) -> list[Query]:
    """Generate a seeded query stream.

    Args:
        world: Ground-truth world.
        concepts: Good concepts scenario queries are drawn from.
        count: Number of queries.
        seed: Override for the world's master seed.
        scenario_fraction: Share of scenario queries.
        problem_fraction: Share of problem queries.
        novelty_rate: Probability a scenario/problem query mentions an
            emerging trend term no ontology covers yet.
    """
    rng = spawn_rng(world.seed if seed is None else seed, "queries")
    lexicon = world.lexicon
    categories = lexicon.domain_surfaces("Category")
    colors = lexicon.domain_surfaces("Color")
    brands = lexicon.domain_surfaces("Brand")
    functions = lexicon.domain_surfaces("Function")
    scenario_specs = [c for c in concepts if c.good]

    queries: list[Query] = []
    for _ in range(count):
        draw = rng.random()
        if draw < scenario_fraction and scenario_specs:
            if rng.random() < novelty_rate:
                queries.append(_novel_query(rng))
            else:
                spec = scenario_specs[int(rng.integers(len(scenario_specs)))]
                queries.append(Query(spec.text, "scenario", spec.text))
        elif draw < scenario_fraction + problem_fraction and scenario_specs:
            if rng.random() < novelty_rate:
                queries.append(_novel_query(rng))
            else:
                queries.append(_problem_query(rng, scenario_specs))
        else:
            queries.append(_product_query(rng, categories, colors, brands,
                                          functions))
    return queries


def _novel_query(rng: np.random.Generator) -> Query:
    """A scenario query around an emerging trend term."""
    term = NOVEL_TERMS[int(rng.integers(len(NOVEL_TERMS)))]
    templates = ("{term}", "{term} gear", "things for {term}")
    template = templates[int(rng.integers(len(templates)))]
    return Query(template.format(term=term), "scenario")


def _product_query(rng: np.random.Generator, categories, colors, brands,
                   functions) -> Query:
    category = categories[int(rng.integers(len(categories)))]
    form = rng.random()
    if form < 0.4:
        text = category
    elif form < 0.6:
        text = f"{colors[int(rng.integers(len(colors)))]} {category}"
    elif form < 0.8:
        text = f"{brands[int(rng.integers(len(brands)))]} {category}"
    else:
        text = f"{functions[int(rng.integers(len(functions)))]} {category}"
    return Query(text, "product")


def _problem_query(rng: np.random.Generator,
                   scenario_specs: list[ConceptSpec]) -> Query:
    """A wordier restatement of a scenario concept ('what do i need for
    outdoor barbecue')."""
    spec = scenario_specs[int(rng.integers(len(scenario_specs)))]
    templates = (
        "what do i need for {concept}",
        "things for {concept}",
        "help with {concept}",
        "prepare for {concept}",
    )
    template = templates[int(rng.integers(len(templates)))]
    return Query(template.format(concept=spec.text), "problem", spec.text)
