"""Ground-truth vocabulary of the synthetic e-commerce world.

Every surface form is registered with its domain and taxonomy class.  The
lexicon deliberately plants the phenomena the paper's models must handle:

- *ambiguous surfaces* that live in two domains (``village`` is both a
  Location and a Style; ``barbecue`` is both an Event and an IP movie) —
  exercised by the fuzzy CRF of Section 5.3;
- *hypernym structure* inside Category (``trench coat`` isA ``coat``) —
  exercised by Section 4.2, including suffix evidence mirroring the
  paper's "XX pants must be pants" Chinese grammar rule;
- *generated brands/IPs* so open classes dominate the vocabulary the way
  Brand (879K) and IP (1.5M) dominate Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import spawn_rng

# --------------------------------------------------------------------- seeds
#: leaf class -> head category nouns.
CATEGORY_WORDS: dict[str, tuple[str, ...]] = {
    "Clothing": ("dress", "skirt", "coat", "jacket", "trousers", "sweater",
                 "t-shirt", "hoodie", "suit", "pajamas", "leggings",
                 "swimsuit"),
    "Shoes": ("sneakers", "boots", "sandals", "slippers", "loafers"),
    "Accessory": ("hat", "scarf", "gloves", "belt", "socks", "sunglasses",
                  "suitcase", "umbrella", "backpack"),
    "Snacks": ("snacks", "cookies", "chips", "chocolate", "moon-cakes",
               "candy"),
    "Beverage": ("tea", "coffee", "juice", "wine"),
    "FreshFood": ("beef", "fish", "vegetables", "fruit", "butter"),
    "Furniture": ("sofa", "table", "chair", "bookshelf", "bed"),
    "Decor": ("curtain", "rug", "vase", "lantern", "candles", "balloons"),
    "Bedding": ("blanket", "quilt", "pillow", "sheets", "neck-pillow"),
    "GardenTools": ("shovel", "hose", "planter", "trap", "fence", "seeds"),
    "BathSupplies": ("towel", "bathrobe", "shower-gel", "shampoo"),
    "Phones": ("smartphone", "charger", "earphones", "phone-case"),
    "Appliances": ("heater", "fan", "humidifier", "kettle", "vacuum"),
    "Wearables": ("smartwatch", "tracker", "locator"),
    "CampingGear": ("tent", "sleeping-bag", "flashlight", "stove",
                    "picnic-mat", "picnic-basket"),
    "BarbecueGear": ("grill", "charcoal", "skewers", "tongs", "grill-brush",
                     "apron"),
    "Fitness": ("yoga-mat", "dumbbells", "jump-rope", "treadmill",
                "water-bottle"),
    "SwimGear": ("goggles", "swim-cap", "float", "swim-ring"),
    "FishingGear": ("fishing-rod", "bait", "fishing-line", "folding-stool"),
    "Skincare": ("sunscreen", "lotion", "face-mask", "lip-balm"),
    "HealthCare": ("thermometer", "vitamins", "massager", "wheelchair",
                   "hearing-aid", "repellent", "mosquito-net"),
    "Toys": ("blocks", "puzzle", "doll", "plush-toy", "kite"),
    "BabyCare": ("diapers", "bottle", "stroller", "bib", "crib"),
    "Cookware": ("pan", "pot", "wok", "baking-tray", "oven"),
    "Bakeware": ("whisk", "mixer", "flour", "oven-mitts", "strainer",
                 "egg-scrambler"),
    "Tableware": ("plates", "bowls", "chopsticks", "mugs", "thermos",
                  "lunch-box"),
    "PetGear": ("pet-bed", "leash", "pet-food", "cat-tree"),
    "Gifts": ("gifts", "gift-box", "greeting-cards"),
}

#: subtype prefixes used to mint compound category nouns with a ground-truth
#: hypernym (e.g. "trench coat" isA "coat").  Indexed by head noun.
SUBTYPE_PREFIXES: dict[str, tuple[str, ...]] = {
    "dress": ("maxi", "wrap", "slip", "shirt", "sun"),
    "skirt": ("pleated", "denim", "tulle", "wrap"),
    "coat": ("trench", "down", "duffle", "pea"),
    "jacket": ("bomber", "denim", "fleece", "puffer"),
    "trousers": ("cargo", "chino", "corduroy", "cotton-padded"),
    "sweater": ("cardigan", "turtleneck", "cashmere"),
    "hat": ("bucket", "beanie", "straw", "baseball"),
    "boots": ("ankle", "rain", "hiking", "snow"),
    "sneakers": ("running", "canvas", "tennis"),
    "tea": ("green", "oolong", "herbal", "jasmine"),
    "chair": ("rocking", "folding", "lounge"),
    "table": ("coffee", "folding", "dining"),
    "blanket": ("fleece", "weighted", "picnic"),
    "pan": ("frying", "sauce", "grill"),
    "pot": ("stock", "clay", "hot"),
    "grill": ("charcoal", "gas", "tabletop"),
    "tent": ("dome", "pop-up", "family"),
    "doll": ("rag", "wooden", "talking"),
    "kettle": ("electric", "whistling"),
    "fan": ("ceiling", "desk", "handheld"),
    "lantern": ("paper", "solar"),
    "scarf": ("silk", "wool", "knit"),
    "gloves": ("leather", "ski", "gardening"),
    "backpack": ("hiking", "laptop", "drawstring"),
    "charger": ("wireless", "car", "solar"),
}

#: Cover terms: hypernyms that share no surface text with their hyponyms
#: (the paper's "jacket is a kind of top" case, which the suffix rule can
#: never find and search relevance needs isA knowledge for).
COVER_TERMS: dict[str, tuple[str, ...]] = {
    "top": ("jacket", "coat", "sweater", "hoodie", "t-shirt"),
    "footwear": ("sneakers", "boots", "sandals", "slippers", "loafers"),
    "drinkware": ("mugs", "thermos", "water-bottle"),
    "seating": ("sofa", "chair", "folding-stool"),
}

#: Leaf class each cover term belongs to.
COVER_TERM_CLASSES: dict[str, str] = {
    "top": "Clothing",
    "footwear": "Shoes",
    "drinkware": "Tableware",
    "seating": "Furniture",
}

COLOR_WORDS = ("red", "blue", "black", "white", "green", "pink", "purple",
               "grey", "yellow", "beige", "navy", "brown", "rose")
DESIGN_WORDS = ("ergonomic", "double-layer", "zippered", "hooded",
                "adjustable", "stackable", "reversible")
FUNCTION_WORDS = ("waterproof", "windproof", "warm", "breathable", "non-slip",
                  "portable", "foldable", "rechargeable", "insulated",
                  "anti-lost", "noise-cancelling", "quick-dry",
                  "sun-protective", "moisture-proof")
MATERIAL_WORDS = ("cotton", "silk", "leather", "wool", "linen", "bamboo",
                  "ceramic", "stainless-steel", "glass", "plastic",
                  "cast-iron", "velvet", "canvas-fabric")
PATTERN_WORDS = ("striped", "floral", "plaid", "polka-dot", "camouflage",
                 "geometric", "solid-color", "cartoon")
SHAPE_WORDS = ("round", "square", "oval", "heart-shaped", "rectangular",
               "hexagonal")
SMELL_WORDS = ("lavender", "rose-scented", "citrus", "unscented",
               "vanilla-scented", "minty")
TASTE_WORDS = ("sweet", "spicy", "salty", "sour", "bitter", "savory")
STYLE_WORDS = ("british-style", "korean-style", "casual", "vintage",
               "bohemian", "minimalist", "nordic", "retro", "elegant",
               "sporty", "sexy", "village", "rustic", "preppy")
SEASON_WORDS = ("winter", "summer", "spring", "autumn")
HOLIDAY_WORDS = ("christmas", "halloween", "mid-autumn-festival", "new-year",
                 "valentines-day", "spring-festival")
TIME_OF_DAY_WORDS = ("weekend", "night", "morning")
SCENE_WORDS = ("outdoor", "indoor", "beach", "mountain", "village",
               "classroom", "office", "garden", "balcony", "park",
               "seaside", "campsite", "nordic")
REGION_WORDS = ("european", "asian", "tropical", "alpine")
HUMAN_WORDS = ("kids", "baby", "men", "women", "grandpa", "grandma", "olds",
               "students", "teenagers", "infants", "family", "couples")
ANIMAL_AUDIENCE_WORDS = ("pets", "dogs", "cats")
ACTION_WORDS = ("traveling", "baking", "swimming", "hiking", "fishing",
                "gardening", "commuting", "bathing", "skiing")
OCCASION_WORDS = ("barbecue", "camping", "wedding", "party", "picnic",
                  "graduation", "housewarming", "yoga")
NATURE_ANIMAL_WORDS = ("raccoon", "mosquito", "mouse", "pigeon")
NATURE_PLANT_WORDS = ("succulent", "fern", "rose", "cactus")
NATURE_SUBSTANCE_WORDS = ("dust", "pollen", "mold")
ORGANIZATION_WORDS = ("evergreen-charity", "city-sports-club",
                      "national-tea-guild", "harbor-university")
QUANTITY_WORDS = ("800g", "2-pack", "500ml", "xl", "family-size",
                  "travel-size", "6-piece")
MODIFIER_WORDS = ("premium", "new", "classic", "deluxe", "budget",
                  "authentic")

#: Surfaces that exist in two domains at once (the disambiguation cases of
#: Fig 7).  Tuples of (surface, (domain, class) pairs it belongs to).
AMBIGUOUS_SURFACES: tuple[tuple[str, tuple[tuple[str, str], ...]], ...] = (
    ("village", (("Location", "Scene"), ("Style", "Style"))),
    ("nordic", (("Location", "Scene"), ("Style", "Style"))),
    ("rustic", (("Location", "Scene"), ("Style", "Style"))),
    ("bohemian", (("Location", "Region"), ("Style", "Style"))),
    ("barbecue", (("Event", "Occasion"), ("IP", "Movie"))),
    ("wedding", (("Event", "Occasion"), ("IP", "Movie"))),
    ("halloween", (("Time", "Holiday"), ("IP", "Movie"))),
    ("rose", (("Color", "Color"), ("Nature", "Plant"))),
)

#: Words with no e-commerce meaning at all (criterion 1 counter-examples
#: such as "blue sky" / "hens lay eggs").
NON_COMMERCE_WORDS = ("sky", "cloud", "hens", "lay", "eggs", "gravity",
                      "tuesday-feelings", "philosophy", "thunder", "rainbow")

_BRAND_SYLLABLES_A = ("zor", "lum", "kar", "vel", "nim", "tas", "ori", "bex",
                      "qua", "fen", "dal", "rix", "sol", "mav", "jun", "pel")
_BRAND_SYLLABLES_B = ("vex", "ina", "do", "mont", "aro", "ique", "ora", "eta",
                      "ix", "ano", "elle", "usk", "ern", "io", "ax", "um")
_IP_FIRST = ("captain", "starry", "robo", "magic", "pixel", "luna", "turbo",
             "shadow", "crystal", "jade")
_IP_SECOND = ("nova", "kingdom", "rangers", "panda", "odyssey", "academy",
              "garden", "detective", "galaxy", "princess")


@dataclass(frozen=True)
class LexEntry:
    """One ground-truth vocabulary unit.

    Attributes:
        surface: The word/phrase as it appears in text.
        domain: First-level domain.
        class_name: Taxonomy class (leaf) the concept instantiates.
        hypernym: Surface of the ground-truth hypernym within the same
            domain, or ``None``.
        pos: Coarse POS tag of the surface's head for tagger lexicons.
    """

    surface: str
    domain: str
    class_name: str
    hypernym: str | None = None
    pos: str = "NOUN"


@dataclass
class Lexicon:
    """All lexicon entries with per-domain and per-surface indexes."""

    entries: list[LexEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_domain: dict[str, list[LexEntry]] = {}
        self._by_surface: dict[str, list[LexEntry]] = {}
        for entry in self.entries:
            self._by_domain.setdefault(entry.domain, []).append(entry)
            self._by_surface.setdefault(entry.surface, []).append(entry)

    def domain_entries(self, domain: str) -> list[LexEntry]:
        """Entries of one domain (empty list if none)."""
        return list(self._by_domain.get(domain, []))

    def domain_surfaces(self, domain: str) -> list[str]:
        """Surfaces of one domain, in registration order."""
        return [entry.surface for entry in self._by_domain.get(domain, [])]

    def senses(self, surface: str) -> list[LexEntry]:
        """All senses of a surface (more than one for ambiguous words)."""
        return list(self._by_surface.get(surface, []))

    def domains_of(self, surface: str) -> list[str]:
        """Domains a surface can belong to."""
        return [entry.domain for entry in self.senses(surface)]

    def is_ambiguous(self, surface: str) -> bool:
        return len(self._by_surface.get(surface, [])) > 1

    def surfaces(self) -> list[str]:
        """All distinct surfaces."""
        return list(self._by_surface)

    def hypernym_pairs(self, domain: str) -> list[tuple[str, str]]:
        """(hyponym surface, hypernym surface) pairs within a domain."""
        return [(entry.surface, entry.hypernym)
                for entry in self.domain_entries(domain)
                if entry.hypernym is not None]

    def pos_lexicon(self) -> dict[str, str]:
        """word -> POS map for seeding the tagger (single-word surfaces)."""
        mapping: dict[str, str] = {}
        for entry in self.entries:
            if " " not in entry.surface:
                mapping.setdefault(entry.surface, entry.pos)
        return mapping


def _generate_brands(rng: np.random.Generator, count: int) -> list[str]:
    brands: list[str] = []
    seen: set[str] = set()
    while len(brands) < count:
        name = rng.choice(_BRAND_SYLLABLES_A) + rng.choice(_BRAND_SYLLABLES_B)
        if name not in seen:
            seen.add(name)
            brands.append(str(name))
        if len(seen) >= len(_BRAND_SYLLABLES_A) * len(_BRAND_SYLLABLES_B):
            break
    return brands


def _generate_ips(rng: np.random.Generator, count: int) -> list[str]:
    ips: list[str] = []
    seen: set[str] = set()
    while len(ips) < count:
        name = f"{rng.choice(_IP_FIRST)}-{rng.choice(_IP_SECOND)}"
        if name not in seen:
            seen.add(name)
            ips.append(str(name))
        if len(seen) >= len(_IP_FIRST) * len(_IP_SECOND):
            break
    return ips


def build_lexicon(seed: int = 7, n_brands: int = 60, n_ips: int = 40) -> Lexicon:
    """Assemble the full ground-truth lexicon.

    Args:
        seed: Master seed (brand/IP name generation derives from it).
        n_brands: Number of synthetic brand names (capped at 256).
        n_ips: Number of synthetic IP names (capped at 100).
    """
    rng = spawn_rng(seed, "lexicon")
    entries: list[LexEntry] = []

    def add(surface: str, domain: str, class_name: str,
            hypernym: str | None = None, pos: str = "NOUN") -> None:
        entries.append(LexEntry(surface, domain, class_name, hypernym, pos))

    ambiguous = {surface for surface, _ in AMBIGUOUS_SURFACES}

    cover_of: dict[str, str] = {}
    for cover, hyponyms in COVER_TERMS.items():
        for hyponym in hyponyms:
            cover_of[hyponym] = cover
    for cover, class_name in COVER_TERM_CLASSES.items():
        add(cover, "Category", class_name)
    for class_name, words in CATEGORY_WORDS.items():
        for word in words:
            add(word, "Category", class_name, hypernym=cover_of.get(word))
            for prefix in SUBTYPE_PREFIXES.get(word, ()):
                add(f"{prefix} {word}", "Category", class_name, hypernym=word)

    for word in COLOR_WORDS:
        if word not in ambiguous:
            add(word, "Color", "Color", pos="ADJ")
    for word in DESIGN_WORDS:
        add(word, "Design", "Design", pos="ADJ")
    for word in FUNCTION_WORDS:
        add(word, "Function", "Function", pos="ADJ")
    for word in MATERIAL_WORDS:
        add(word, "Material", "Material")
    for word in PATTERN_WORDS:
        add(word, "Pattern", "Pattern", pos="ADJ")
    for word in SHAPE_WORDS:
        add(word, "Shape", "Shape", pos="ADJ")
    for word in SMELL_WORDS:
        add(word, "Smell", "Smell", pos="ADJ")
    for word in TASTE_WORDS:
        add(word, "Taste", "Taste", pos="ADJ")
    for word in STYLE_WORDS:
        if word not in ambiguous:
            add(word, "Style", "Style", pos="ADJ")
    for word in SEASON_WORDS:
        add(word, "Time", "Season")
    for word in HOLIDAY_WORDS:
        if word not in ambiguous:
            add(word, "Time", "Holiday")
    for word in TIME_OF_DAY_WORDS:
        add(word, "Time", "TimeOfDay")
    for word in SCENE_WORDS:
        if word not in ambiguous:
            add(word, "Location", "Scene")
    for word in REGION_WORDS:
        add(word, "Location", "Region", pos="ADJ")
    for word in HUMAN_WORDS:
        add(word, "Audience", "Human")
    for word in ANIMAL_AUDIENCE_WORDS:
        add(word, "Audience", "Animal")
    for word in ACTION_WORDS:
        add(word, "Event", "Action", pos="VERB")
    for word in OCCASION_WORDS:
        if word not in ambiguous:
            add(word, "Event", "Occasion")
    for word in NATURE_ANIMAL_WORDS:
        if word not in ambiguous:
            add(word, "Nature", "WildAnimal")
    for word in NATURE_PLANT_WORDS:
        if word not in ambiguous:
            add(word, "Nature", "Plant")
    for word in NATURE_SUBSTANCE_WORDS:
        add(word, "Nature", "Substance")
    for word in ORGANIZATION_WORDS:
        add(word, "Organization", "Organization")
    for word in QUANTITY_WORDS:
        add(word, "Quantity", "Quantity", pos="NUM")
    for word in MODIFIER_WORDS:
        add(word, "Modifier", "Modifier", pos="ADJ")

    for brand in _generate_brands(rng, n_brands):
        add(brand, "Brand", "Brand")
    for ip in _generate_ips(rng, n_ips):
        add(ip, "IP", "Movie")

    for surface, senses in AMBIGUOUS_SURFACES:
        for domain, class_name in senses:
            add(surface, domain, class_name)

    return Lexicon(entries)
