"""Corpus assembly: queries + titles + reviews + guides.

These are the paper's four mining sources (Section 4.1): "search queries,
product titles, user-written reviews and shopping guides".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RunScale
from .guides import generate_guides
from .items import SynthItem, generate_items
from .queries import Query, generate_queries
from .reviews import generate_reviews
from .world import ConceptSpec, World


@dataclass
class Corpus:
    """The full text corpus plus the structures it was generated from."""

    items: list[SynthItem] = field(default_factory=list)
    queries: list[Query] = field(default_factory=list)
    reviews: list[list[str]] = field(default_factory=list)
    guides: list[list[str]] = field(default_factory=list)

    def title_sentences(self) -> list[list[str]]:
        return [list(item.title_tokens) for item in self.items]

    def query_sentences(self) -> list[list[str]]:
        return [list(query.tokens) for query in self.queries]

    def sentences(self) -> list[list[str]]:
        """Every sentence from all four sources."""
        return (self.title_sentences() + self.query_sentences()
                + self.reviews + self.guides)


def build_corpus(world: World, concepts: list[ConceptSpec],
                 scale: RunScale) -> Corpus:
    """Generate the corpus for a run scale (all streams seeded from the
    world's master seed)."""
    items = generate_items(world, scale.n_items)
    queries = generate_queries(world, concepts, scale.n_queries)
    reviews = generate_reviews(world, items, scale.n_reviews)
    guides = generate_guides(world, concepts, scale.n_guides)
    return Corpus(items=items, queries=queries, reviews=reviews, guides=guides)
