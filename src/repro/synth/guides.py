"""Shopping-guide generator.

Guides are merchant-written explanatory text.  They are the corpus source
for two miners:

- *Hearst patterns* for hypernym discovery (Section 4.2.1): guides emit
  "coats such as trench coat and down coat" and "a trench coat is a kind
  of coat" sentences;
- *phrase mining* for e-commerce concept candidates (Section 5.2.1):
  guides repeat scenario phrases like "outdoor barbecue" in context.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import spawn_rng
from .world import ConceptSpec, EVENT_NEEDS, FUNCTION_PROVIDERS, World


def generate_guides(world: World, concepts: list[ConceptSpec], count: int,
                    seed: int | None = None) -> list[list[str]]:
    """Tokenised guide sentences.

    Args:
        world: The ground-truth world.
        concepts: Good concepts to weave into scenario sentences.
        count: Number of guide sentences.
        seed: Override for the world's master seed.
    """
    rng = spawn_rng(world.seed if seed is None else seed, "guides")
    hypernym_pairs = world.lexicon.hypernym_pairs("Category")
    scenario_specs = [c for c in concepts if c.good]
    makers = []
    if hypernym_pairs:
        makers.append(lambda: _hearst_sentence(rng, hypernym_pairs))
        makers.append(lambda: _such_as_sentence(rng, hypernym_pairs))
    makers.append(lambda: _event_kit_sentence(rng))
    makers.append(lambda: _function_sentence(rng))
    if scenario_specs:
        makers.append(lambda: _scenario_sentence(rng, scenario_specs))

    guides: list[list[str]] = []
    for _ in range(count):
        maker = makers[int(rng.integers(len(makers)))]
        guides.append(maker())
    return guides


def _hearst_sentence(rng: np.random.Generator,
                     pairs: list[tuple[str, str]]) -> list[str]:
    hyponym, hypernym = pairs[int(rng.integers(len(pairs)))]
    forms = (
        ["a", *hyponym.split(), "is", "a", "kind", "of", hypernym],
        ["the", *hyponym.split(), "is", "a", "type", "of", hypernym],
        ["every", *hyponym.split(), "is", "a", hypernym],
    )
    return list(forms[int(rng.integers(len(forms)))])


def _such_as_sentence(rng: np.random.Generator,
                      pairs: list[tuple[str, str]]) -> list[str]:
    hypernym = pairs[int(rng.integers(len(pairs)))][1]
    hyponyms = [hypo for hypo, hyper in pairs if hyper == hypernym]
    rng.shuffle(hyponyms)
    first = hyponyms[0]
    sentence = [hypernym, "such", "as", *first.split()]
    if len(hyponyms) > 1:
        sentence += ["and", *hyponyms[1].split()]
    return sentence


def _event_kit_sentence(rng: np.random.Generator) -> list[str]:
    events = list(EVENT_NEEDS)
    event = events[int(rng.integers(len(events)))]
    needs = list(EVENT_NEEDS[event])
    rng.shuffle(needs)
    picked = needs[:3]
    sentence = ["for", event, "you", "will", "need"]
    for i, need in enumerate(picked):
        if i == len(picked) - 1 and len(picked) > 1:
            sentence.append("and")
        sentence.extend(need.split())
    return sentence


def _function_sentence(rng: np.random.Generator) -> list[str]:
    functions = list(FUNCTION_PROVIDERS)
    function = functions[int(rng.integers(len(functions)))]
    providers = list(FUNCTION_PROVIDERS[function])
    rng.shuffle(providers)
    picked = providers[:2]
    sentence = ["to", "stay", function, "try"]
    for i, provider in enumerate(picked):
        if i == len(picked) - 1 and len(picked) > 1:
            sentence.append("or")
        sentence.extend(provider.split())
    return sentence


def _scenario_sentence(rng: np.random.Generator,
                       specs: list[ConceptSpec]) -> list[str]:
    spec = specs[int(rng.integers(len(specs)))]
    templates = (
        ["everything", "you", "need", "for", *spec.tokens],
        ["our", "picks", "for", *spec.tokens],
        ["how", "to", "prepare", "for", *spec.tokens],
        [*spec.tokens, "made", "easy"],
    )
    return list(templates[int(rng.integers(len(templates)))])
