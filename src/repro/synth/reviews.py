"""User-review generator (one of the paper's four text sources)."""

from __future__ import annotations

import numpy as np

from ..utils.rng import spawn_rng
from .items import SynthItem
from .world import World

_POSITIVE = ("great", "excellent", "sturdy", "lovely", "comfortable",
             "worth-it")
_NEGATIVE = ("flimsy", "disappointing", "scratchy", "faded", "broken")


def generate_reviews(world: World, items: list[SynthItem], count: int,
                     seed: int | None = None) -> list[list[str]]:
    """Tokenised reviews mentioning item attributes and usage scenarios.

    Reviews are a mining source: they mention category words in free-text
    context ("bought this trench coat for winter traveling"), which the
    BiLSTM-CRF miner and the embedding trainer both consume.
    """
    rng = spawn_rng(world.seed if seed is None else seed, "reviews")
    reviews: list[list[str]] = []
    if not items:
        return reviews
    for _ in range(count):
        item = items[int(rng.integers(len(items)))]
        reviews.append(_render(rng, item))
    return reviews


def _render(rng: np.random.Generator, item: SynthItem) -> list[str]:
    sentiment = _POSITIVE if rng.random() < 0.75 else _NEGATIVE
    quality = sentiment[int(rng.integers(len(sentiment)))]
    tokens = ["the", *item.category.split(), "is", quality]
    if item.functions and rng.random() < 0.5:
        tokens += ["and", "really", item.functions[0]]
    if item.events and rng.random() < 0.5:
        event = item.events[int(rng.integers(len(item.events)))]
        tokens += ["bought", "it", "for", event]
    if item.audiences and rng.random() < 0.35:
        tokens += ["my", item.audiences[0], "love", "it"]
    if item.color and rng.random() < 0.3:
        tokens += ["the", item.color, "color", "looks", "nice"]
    return tokens
