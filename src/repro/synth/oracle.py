"""The human-annotator substitute.

The paper leans on crowdsourced labelling throughout construction; the
active-learning experiment (Table 3) is entirely about *how few* of those
labels are needed.  The oracle answers the same questions from world ground
truth, and optionally enforces a labelling budget so experiments can
measure annotation economy.
"""

from __future__ import annotations

from ..errors import BudgetExhaustedError
from .items import SynthItem, item_matches_concept
from .world import ConceptSpec, World


class Oracle:
    """Ground-truth annotator with an optional budget.

    Args:
        world: The ground-truth world.
        budget: Maximum number of label calls (``None`` = unlimited).
    """

    def __init__(self, world: World, budget: int | None = None):
        self.world = world
        self.budget = budget
        self.labels_used = 0
        self._hypernym_pairs = {
            pair for pair in world.lexicon.hypernym_pairs("Category")}

    def _spend(self, amount: int = 1) -> None:
        if self.budget is not None and self.labels_used + amount > self.budget:
            raise BudgetExhaustedError(
                f"labelling budget of {self.budget} exhausted")
        self.labels_used += amount

    # ------------------------------------------------------------ questions
    def label_hypernym(self, hyponym: str, hypernym: str) -> bool:
        """Is ``hyponym`` isA ``hypernym`` among Category concepts?"""
        self._spend()
        return (hyponym, hypernym) in self._hypernym_pairs

    def label_concept(self, spec: ConceptSpec) -> bool:
        """Does the candidate satisfy the five criteria of Section 5.1?"""
        self._spend()
        return spec.good

    def label_tagging(self, spec: ConceptSpec) -> list[str]:
        """Gold IOB domain labels of a good concept."""
        self._spend()
        return spec.iob_labels()

    def label_match(self, item: SynthItem, spec: ConceptSpec) -> bool:
        """Is the item relevant to the concept?"""
        self._spend()
        return item_matches_concept(self.world, item, spec)
