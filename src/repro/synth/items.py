"""Synthetic item catalog.

Items are the smallest selling unit (paper footnote 3).  Each synthetic
item has ground-truth attributes drawn compatibly from the lexicon, and a
merchant-style keyword-stuffed title.  Two kinds of function attribute are
distinguished on purpose:

- *explicit* functions appear in the title ("waterproof boots");
- *provided* functions are implied by the category via
  :data:`~repro.synth.world.FUNCTION_PROVIDERS` ("blanket" keeps you warm)
  and never appear in the title — the semantic-drift cases the matching
  model of Section 6 must bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import spawn_rng
from .world import (
    AUDIENCE_CLASSES, CATEGORY_SEASON_BAD, ConceptSpec,
    FUNCTION_PROVIDERS, HOLIDAY_GIFTS, PEST_SOLUTIONS, World,
)

_FASHION_CLASSES = frozenset({"Clothing", "Shoes", "Accessory", "Decor",
                              "Bedding"})
_COLORABLE_CLASSES = _FASHION_CLASSES | frozenset({
    "Furniture", "Tableware", "Toys", "BabyCare", "Cookware", "PetGear"})
_SCENE_OF_CLASS = {
    "CampingGear": ("outdoor", "campsite", "mountain"),
    "BarbecueGear": ("outdoor", "garden"),
    "GardenTools": ("garden", "outdoor", "balcony"),
    "FishingGear": ("outdoor", "seaside"),
    "Furniture": ("indoor",),
    "Decor": ("indoor",),
    "SwimGear": ("beach", "seaside"),
}


@dataclass
class SynthItem:
    """One catalog item with ground truth.

    Attributes:
        index: Position in the catalog (stable id surrogate).
        category: Category surface, possibly a compound subtype.
        leaf_class: Taxonomy leaf class of the category.
        head: Head noun of the category (equals ``category`` for heads).
        brand / color / material / style / pattern / quantity: Optional
            attribute surfaces (``None`` when absent).
        functions: Explicit functions (appear in the title).
        provided_functions: Implicit functions from the category.
        seasons: Seasons the item suits.
        audiences: Audiences the item targets.
        events: Events whose kit includes this item's category.
        title: Merchant title text.
    """

    index: int
    category: str
    leaf_class: str
    head: str
    brand: str | None = None
    color: str | None = None
    material: str | None = None
    style: str | None = None
    pattern: str | None = None
    quantity: str | None = None
    functions: tuple[str, ...] = ()
    provided_functions: tuple[str, ...] = ()
    seasons: tuple[str, ...] = ()
    audiences: tuple[str, ...] = ()
    events: tuple[str, ...] = ()
    scenes: tuple[str, ...] = ()
    title: str = ""

    @property
    def title_tokens(self) -> tuple[str, ...]:
        return tuple(self.title.split())

    def primitive_surfaces(self) -> list[tuple[str, str]]:
        """Ground-truth (surface, domain) tags of this item."""
        tags: list[tuple[str, str]] = [(self.category, "Category")]
        for surface, domain in ((self.brand, "Brand"), (self.color, "Color"),
                                (self.material, "Material"),
                                (self.style, "Style"),
                                (self.pattern, "Pattern"),
                                (self.quantity, "Quantity")):
            if surface is not None:
                tags.append((surface, domain))
        tags.extend((f, "Function") for f in self.functions)
        tags.extend((s, "Time") for s in self.seasons)
        tags.extend((a, "Audience") for a in self.audiences)
        return tags


def _maybe(rng: np.random.Generator, probability: float) -> bool:
    return bool(rng.random() < probability)


def _choice(rng: np.random.Generator, options: list[str]) -> str:
    return options[int(rng.integers(len(options)))]


def generate_items(world: World, count: int, seed: int | None = None) -> list[SynthItem]:
    """Generate ``count`` items with attributes consistent with the world.

    Args:
        world: The ground-truth world.
        count: Catalog size.
        seed: Override for the world's master seed.
    """
    lexicon = world.lexicon
    rng = spawn_rng(world.seed if seed is None else seed, "items")
    categories = lexicon.domain_surfaces("Category")
    brands = lexicon.domain_surfaces("Brand")
    colors = lexicon.domain_surfaces("Color")
    materials = lexicon.domain_surfaces("Material")
    styles = [s for s in lexicon.domain_surfaces("Style") if s != "sexy"]
    patterns = lexicon.domain_surfaces("Pattern")
    quantities = lexicon.domain_surfaces("Quantity")
    seasons = ("winter", "summer", "spring", "autumn")

    items: list[SynthItem] = []
    for index in range(count):
        category = _choice(rng, categories)
        leaf = world.category_class(category)
        head = world.category_head(category)
        item = SynthItem(index=index, category=category, leaf_class=leaf,
                         head=head)
        item.brand = _choice(rng, brands) if _maybe(rng, 0.8) else None
        if leaf in _COLORABLE_CLASSES and _maybe(rng, 0.6):
            item.color = _choice(rng, colors)
        if leaf in _FASHION_CLASSES and _maybe(rng, 0.5):
            item.material = _choice(rng, materials)
        if leaf in _FASHION_CLASSES and _maybe(rng, 0.4):
            item.style = _choice(rng, styles)
        if leaf in _FASHION_CLASSES and _maybe(rng, 0.25):
            item.pattern = _choice(rng, patterns)
        if _maybe(rng, 0.3):
            item.quantity = _choice(rng, quantities)

        applicable = world.functions_for_class(leaf)
        explicit: list[str] = []
        if applicable:
            for _ in range(int(rng.integers(0, 3))):
                explicit.append(_choice(rng, applicable))
        item.functions = tuple(dict.fromkeys(explicit))
        item.provided_functions = tuple(
            f for f, providers in FUNCTION_PROVIDERS.items()
            if head in providers or category in providers)

        allowed_seasons = [s for s in seasons
                           if (head, s) not in CATEGORY_SEASON_BAD
                           and (category, s) not in CATEGORY_SEASON_BAD]
        n_seasons = int(rng.integers(1, 3))
        picked = list(rng.choice(allowed_seasons,
                                 size=min(n_seasons, len(allowed_seasons)),
                                 replace=False)) if allowed_seasons else []
        item.seasons = tuple(str(s) for s in picked)

        candidate_audiences = world.audiences_for_class(leaf)
        if candidate_audiences and _maybe(rng, 0.7):
            n_audiences = int(rng.integers(1, 3))
            picked_audiences = rng.choice(
                candidate_audiences,
                size=min(n_audiences, len(candidate_audiences)),
                replace=False)
            item.audiences = tuple(str(a) for a in picked_audiences)

        item.events = tuple(world.events_needing(category))
        item.scenes = _SCENE_OF_CLASS.get(leaf, ())
        item.title = _render_title(rng, item)
        items.append(item)
    return items


def _render_title(rng: np.random.Generator, item: SynthItem) -> str:
    """Keyword-stuffed merchant title in a mostly fixed attribute order."""
    tokens: list[str] = []
    if item.brand:
        tokens.append(item.brand)
    if item.style and _maybe(rng, 0.9):
        tokens.append(item.style)
    for function in item.functions:
        tokens.append(function)
    if item.material and _maybe(rng, 0.9):
        tokens.append(item.material)
    if item.color and _maybe(rng, 0.9):
        tokens.append(item.color)
    if item.pattern and _maybe(rng, 0.8):
        tokens.append(item.pattern)
    tokens.extend(item.category.split())
    if item.audiences and _maybe(rng, 0.6):
        tokens.extend(["for", item.audiences[0]])
    if item.seasons and _maybe(rng, 0.4):
        tokens.append(item.seasons[0])
    if item.events and _maybe(rng, 0.25):
        tokens.append(item.events[int(rng.integers(len(item.events)))])
    if item.quantity and _maybe(rng, 0.9):
        tokens.append(item.quantity)
    return " ".join(tokens)


def item_matches_concept(world: World, item: SynthItem,
                         spec: ConceptSpec) -> bool:
    """Ground-truth relevance of an item to a (good) e-commerce concept.

    Encodes the paper's semantics: an item belongs to a shopping scenario
    when it is *needed or suggested* under it — including semantic-drift
    cases where no concept word appears in the title.
    """
    if not spec.good or not spec.parts:
        return False
    has_event = any(p.domain == "Event" for p in spec.parts)
    has_category = any(p.domain == "Category" for p in spec.parts)
    for part in spec.parts:
        if not _part_matches(world, item, part, has_event, has_category):
            return False
    return True


def _part_matches(world: World, item: SynthItem, part, has_event: bool,
                  has_category: bool) -> bool:
    surface, domain = part.surface, part.domain
    if domain == "Category":
        if surface == "gifts":
            # "X gifts for Y" concepts constrain via holiday/audience parts.
            return True
        return item.category == surface or item.head == surface
    if domain == "Event":
        return surface in item.events
    if domain == "Function":
        return surface in item.functions or surface in item.provided_functions
    if domain == "Audience":
        return surface in item.audiences
    if domain == "Time":
        if surface in HOLIDAY_GIFTS:
            return item.head in HOLIDAY_GIFTS[surface] \
                or item.category in HOLIDAY_GIFTS[surface]
        return surface in item.seasons
    if domain == "Style":
        return item.style == surface
    if domain == "Location":
        if has_event and not has_category:
            # Scenario-level location ("outdoor barbecue"): the event's kit
            # qualifies regardless of item-level scene (semantic drift).
            return True
        return surface in item.scenes
    if domain == "Nature":
        return item.head in PEST_SOLUTIONS.get(surface, ()) \
            or item.category in PEST_SOLUTIONS.get(surface, ())
    if domain == "Brand":
        return item.brand == surface
    if domain == "Material":
        return item.material == surface
    if domain == "Color":
        return item.color == surface
    return False


def audience_affinity(item: SynthItem) -> list[str]:
    """Audiences plausibly served by an item (union of class affinity and
    explicit tags) — used by the recommender."""
    from_class = [audience for audience, classes in AUDIENCE_CLASSES.items()
                  if item.leaf_class in classes]
    return list(dict.fromkeys(list(item.audiences) + from_class))
