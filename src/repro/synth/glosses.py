"""The external knowledge base — Wikipedia-gloss substitute.

The paper links concept words to Wikipedia and encodes each article's gloss
with Doc2vec to inject commonsense into classification (Fig 5), tagging
(Fig 6) and matching (Fig 8).  Here every lexicon surface gets a synthetic
gloss that verbalises the world's ground truth:

- the gloss of *mid-autumn-festival* mentions *moon-cakes* (the paper's own
  case study in Section 7.6);
- the gloss of *warm* names its provider categories (blanket, heater, ...);
- the gloss of *sexy* states it is for adults and not for babies — the
  commonsense the plausibility classifier needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .world import (
    AUDIENCE_CLASSES, CATEGORY_SEASON_BAD, EVENT_NEEDS, FUNCTION_CLASSES,
    FUNCTION_EVENT_BAD, FUNCTION_PROVIDERS, HOLIDAY_GIFTS,
    LOCATION_EVENT_BAD, PEST_SOLUTIONS, STYLE_AUDIENCE_BAD, World,
)

#: Marker prefixes planted in glosses.  ``not-X`` encodes an explicit
#: incompatibility ("sexy ... not-baby"); ``applies-C`` / ``class-C``
#: encode which leaf classes a function can describe and which class a
#: category belongs to.  Doc2vec at laptop scale cannot carry negation
#: reliably, so commonsense checks read these markers symbolically — the
#: same knowledge the paper's models squeeze out of Wikipedia glosses.
NEGATION_PREFIX = "not-"
APPLIES_PREFIX = "applies-"
CLASS_PREFIX = "class-"


@dataclass
class GlossKB:
    """Maps surfaces to tokenised glosses."""

    glosses: dict[str, list[str]] = field(default_factory=dict)

    def gloss(self, surface: str) -> list[str]:
        """Gloss tokens for a surface (empty list if unknown)."""
        return list(self.glosses.get(surface, []))

    def has(self, surface: str) -> bool:
        return surface in self.glosses

    def surfaces(self) -> list[str]:
        return list(self.glosses)

    def documents(self) -> list[list[str]]:
        """All glosses in surface order (for Doc2vec training)."""
        return [self.glosses[s] for s in self.glosses]

    # ------------------------------------------------- commonsense queries
    def incompatible(self, word_a: str, word_b: str) -> bool:
        """Do the glosses state that two words cannot co-occur?

        True when either gloss carries an explicit ``not-<other>`` marker,
        or a function's ``applies-*`` class list excludes the other word's
        ``class-*`` membership.
        """
        gloss_a = set(self.glosses.get(word_a, ()))
        gloss_b = set(self.glosses.get(word_b, ()))
        if NEGATION_PREFIX + word_b in gloss_a or \
                NEGATION_PREFIX + word_a in gloss_b:
            return True
        return self._class_mismatch(gloss_a, gloss_b) or \
            self._class_mismatch(gloss_b, gloss_a)

    @staticmethod
    def _class_mismatch(function_gloss: set[str],
                        category_gloss: set[str]) -> bool:
        applicable = {token[len(APPLIES_PREFIX):] for token in function_gloss
                      if token.startswith(APPLIES_PREFIX)}
        if not applicable:
            return False
        classes = {token[len(CLASS_PREFIX):] for token in category_gloss
                   if token.startswith(CLASS_PREFIX)}
        if not classes:
            return False
        return not (classes & applicable)

    def content_words(self, surface: str, limit: int | None = None) -> list[str]:
        """Content words of a gloss: marker tokens and glue words removed.

        These are what the matching model's knowledge sequence carries
        (e.g. "moon-cakes" from the mid-autumn-festival gloss).
        """
        glue = {"is", "a", "an", "the", "of", "kind", "type", "used", "for",
                "in", "it", "keeps", "you", "where", "people", "use", "never",
                "not", "done", "when", "give", "by", "provided", "describes",
                "with", "controlled", "who", "buy", "only", "adults",
                "activity", "holiday", "place", "product", "products",
                "fashion", "style", "group", "shoppers", "goods", "famous",
                "franchise", "attribute", "nature", "brand", "consumer",
                "time", "period", "function", "try", "to", "stay"}
        words = []
        for token in self.glosses.get(surface, ()):
            if token in glue or token == surface:
                continue
            if token.startswith((NEGATION_PREFIX, APPLIES_PREFIX,
                                 CLASS_PREFIX)):
                continue
            if token not in words:
                words.append(token)
        if limit is not None:
            words = words[:limit]
        return words

    def content_word_map(self, limit_per_surface: int = 8) -> dict[str, list[str]]:
        """surface -> gloss content words, for the matching model."""
        return {surface: self.content_words(surface, limit_per_surface)
                for surface in self.glosses}

    def incompatibility_features(self, tokens: list[str]) -> tuple[float, float]:
        """(any-pair flag, normalised pair count) over a token sequence."""
        flags = 0
        pairs = 0
        for i, left in enumerate(tokens):
            for right in tokens[i + 1:]:
                pairs += 1
                if self.incompatible(left, right):
                    flags += 1
        if pairs == 0:
            return 0.0, 0.0
        return (1.0 if flags else 0.0), flags / pairs


def build_gloss_kb(world: World) -> GlossKB:
    """Generate the gloss for every surface in the world's lexicon."""
    lexicon = world.lexicon
    kb = GlossKB()
    for surface in lexicon.surfaces():
        tokens: list[str] = []
        for entry in lexicon.senses(surface):
            tokens.extend(_sense_gloss(world, entry.surface, entry.domain,
                                       entry.class_name, entry.hypernym))
        kb.glosses[surface] = tokens
    return kb


def _sense_gloss(world: World, surface: str, domain: str, class_name: str,
                 hypernym: str | None) -> list[str]:
    tokens: list[str] = [*surface.split(), "is"]
    if domain == "Category":
        if hypernym:
            tokens += ["a", "kind", "of", hypernym]
        tokens += ["a", class_name.lower(), "product",
                   CLASS_PREFIX + class_name.lower()]
        for event, needs in EVENT_NEEDS.items():
            if surface in needs or world.category_head(surface) in needs:
                tokens += ["used", "for", event]
        for function, providers in FUNCTION_PROVIDERS.items():
            head = world.category_head(surface)
            if surface in providers or head in providers:
                tokens += ["it", "keeps", "you", function]
        for (bad_category, season) in sorted(CATEGORY_SEASON_BAD):
            if bad_category == surface:
                tokens += ["never", "used", "in", season,
                           NEGATION_PREFIX + season]
        if surface == "wine":
            for audience in ("kids", "baby", "infants", "teenagers"):
                tokens += ["never", "for", audience,
                           NEGATION_PREFIX + audience]
    elif domain == "Event":
        tokens += ["an", "activity"]
        if surface in EVENT_NEEDS:
            tokens += ["where", "people", "use"]
            for need in EVENT_NEEDS[surface]:
                tokens.extend(need.split())
        bad_locations = [loc for loc, ev in sorted(LOCATION_EVENT_BAD)
                         if ev == surface]
        for location in bad_locations:
            tokens += ["never", "done", "in", location,
                       NEGATION_PREFIX + location]
        for season, event in (("summer", "skiing"),):
            if event == surface:
                tokens += ["never", "in", season, NEGATION_PREFIX + season]
    elif domain == "Time":
        if surface in HOLIDAY_GIFTS:
            tokens += ["a", "holiday", "when", "people", "give"]
            for gift in HOLIDAY_GIFTS[surface]:
                tokens.extend(gift.split())
        else:
            tokens += ["a", "time", "period"]
    elif domain == "Function":
        tokens += ["a", "product", "function"]
        if surface in FUNCTION_PROVIDERS:
            tokens += ["provided", "by"]
            for provider in FUNCTION_PROVIDERS[surface]:
                tokens.extend(provider.split())
        for (function, event) in sorted(FUNCTION_EVENT_BAD):
            if function == surface:
                tokens += ["never", "needed", "for", event,
                           NEGATION_PREFIX + event]
        for leaf_class in FUNCTION_CLASSES.get(surface, ()):
            tokens += ["describes", leaf_class.lower(),
                       APPLIES_PREFIX + leaf_class.lower()]
    elif domain == "Style":
        tokens += ["a", "fashion", "style"]
        bad_audiences = [aud for sty, aud in sorted(STYLE_AUDIENCE_BAD)
                         if sty == surface]
        if bad_audiences:
            tokens += ["for", "adults", "only", "never", "for"]
            tokens += bad_audiences
            tokens += [NEGATION_PREFIX + audience
                       for audience in bad_audiences]
    elif domain == "Audience":
        tokens += ["a", "group", "of", "shoppers", "who", "buy",
                   class_name.lower(), "goods"]
        for leaf in AUDIENCE_CLASSES.get(surface, ()):
            tokens.append(leaf.lower())
    elif domain == "Location":
        tokens += ["a", "place"]
        bad_events = [ev for loc, ev in sorted(LOCATION_EVENT_BAD)
                      if loc == surface]
        for event in bad_events:
            tokens += ["not", "for", event, NEGATION_PREFIX + event]
    elif domain == "Nature":
        tokens += ["a", class_name.lower(), "in", "nature"]
        if surface in PEST_SOLUTIONS:
            tokens += ["controlled", "with"]
            for solution in PEST_SOLUTIONS[surface]:
                tokens.extend(solution.split())
    elif domain == "Brand":
        tokens += ["a", "brand", "of", "consumer", "products"]
    elif domain == "IP":
        tokens += ["a", "famous", class_name.lower(), "franchise"]
    else:
        tokens += ["a", domain.lower(), "attribute", "of", "products"]
    return tokens
