"""User browsing-session simulator.

Section 8.2 evaluates recommendation; its offline ground truth is user
behaviour.  Each simulated user has a *latent shopping need* (an
e-commerce concept); they browse a few of its items (the observable
history), and the rest of the concept's item set is what a good
recommender should surface (the held-out future).  A little off-need
noise browsing is mixed in, as in real logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DataError
from ..kg.query import items_for_concept
from ..kg.store import AliCoCoStore


@dataclass
class UserSession:
    """One simulated user.

    Attributes:
        need_text: The latent scenario driving the session.
        history: Item node ids the user browsed (observable).
        future: Held-out relevant item ids (evaluation ground truth).
    """

    need_text: str
    history: list[str] = field(default_factory=list)
    future: list[str] = field(default_factory=list)


def simulate_sessions(store: AliCoCoStore, concept_ids: dict[str, str],
                      rng: np.random.Generator, n_users: int = 40,
                      history_size: int = 2, min_concept_items: int = 4,
                      noise_probability: float = 0.15,
                      allowed_needs: set[str] | None = None) -> list[UserSession]:
    """Simulate users with latent needs.

    Args:
        store: A built net (items linked to concepts).
        concept_ids: concept text -> node id (from the build result).
        rng: Random stream.
        n_users: Number of sessions.
        history_size: Browsed items per user.
        min_concept_items: Concepts with fewer associated items cannot
            anchor a session.
        noise_probability: Chance each history slot is replaced by a
            random off-need item.
        allowed_needs: Restrict latent needs to these concept texts (used
            to split *seen* vs *novel* needs between user populations).

    Raises:
        DataError: If no concept has enough items.
    """
    eligible: list[tuple[str, list[str]]] = []
    for text, concept_id in concept_ids.items():
        if allowed_needs is not None and text not in allowed_needs:
            continue
        items = [item.id for item in items_for_concept(store, concept_id)]
        if len(items) >= min_concept_items:
            eligible.append((text, items))
    if not eligible:
        raise DataError("no concept has enough items to anchor sessions")
    all_items = [node.id for node in store.nodes("item")]

    sessions: list[UserSession] = []
    for _ in range(n_users):
        need_text, items = eligible[int(rng.integers(len(eligible)))]
        order = rng.permutation(len(items))
        shuffled = [items[i] for i in order]
        history = shuffled[:history_size]
        future = shuffled[history_size:]
        history = [
            all_items[int(rng.integers(len(all_items)))]
            if rng.random() < noise_probability else item_id
            for item_id in history
        ]
        sessions.append(UserSession(need_text=need_text, history=history,
                                    future=future))
    return sessions


def cf_training_sessions(sessions: list[UserSession]) -> list[list[str]]:
    """Full browse lists (history + future) for item-CF co-occurrence
    training — what a production log would contain for past users."""
    return [session.history + session.future for session in sessions]
