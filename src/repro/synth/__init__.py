"""The synthetic e-commerce world.

The paper's substrate is proprietary: Alibaba's item catalog, search
queries, reviews, shopping guides, click logs, human annotators and
Wikipedia glosses.  This subpackage generates seeded synthetic equivalents
that exercise the same code paths:

- :mod:`lexicon` — ground-truth vocabulary for the 20 domains, including
  ambiguous surfaces and hypernym structure;
- :mod:`world` — the world model: compatibility rules, event->category
  requirements (the source of "semantic drift"), good/bad e-commerce
  concept generation with gold interpretations;
- :mod:`items` — the item catalog with templated titles;
- :mod:`queries` / :mod:`reviews` / :mod:`guides` — the text corpus;
- :mod:`clicklog` — simulated user clicks over concept cards;
- :mod:`glosses` — the external knowledge base (Wikipedia substitute);
- :mod:`oracle` — the human-annotator substitute with a labelling budget.
"""

from .lexicon import LexEntry, Lexicon, build_lexicon
from .world import World, ConceptSpec
from .items import SynthItem, generate_items
from .index import ConceptCandidateIndex, PartSignatureIndex
from .corpus import Corpus, build_corpus
from .glosses import GlossKB, build_gloss_kb
from .oracle import Oracle

__all__ = [
    "LexEntry", "Lexicon", "build_lexicon",
    "World", "ConceptSpec",
    "SynthItem", "generate_items",
    "ConceptCandidateIndex", "PartSignatureIndex",
    "Corpus", "build_corpus",
    "GlossKB", "build_gloss_kb",
    "Oracle",
]
