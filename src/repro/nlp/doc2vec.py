"""Doc2vec (PV-DBOW variant, Le & Mikolov 2014).

The paper encodes Wikipedia glosses and word contexts with Doc2vec to inject
external knowledge into its models (Figs 5, 6, 8).  PV-DBOW learns one
vector per document by training it to predict the document's words under
negative sampling — the distributed-bag-of-words flavour, which is the
cheap, robust variant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from .vocab import Vocab


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Doc2Vec:
    """PV-DBOW document embeddings.

    Args:
        dim: Document/word vector dimension.
        negatives: Negative samples per positive word.
        lr: SGD learning rate.
        epochs: Training epochs over the document collection.
        seed: RNG seed.
    """

    def __init__(self, dim: int = 32, negatives: int = 4, lr: float = 0.05,
                 epochs: int = 10, seed: int = 0):
        self.dim = dim
        self.negatives = negatives
        self.lr = lr
        self.epochs = epochs
        self._rng = np.random.default_rng(seed)
        self.vocab: Vocab | None = None
        self.doc_vectors: np.ndarray | None = None
        self.word_out: np.ndarray | None = None
        self._noise: np.ndarray | None = None

    def fit(self, documents: Sequence[Sequence[str]]) -> "Doc2Vec":
        """Learn one vector per document.

        Args:
            documents: Tokenised documents, index-aligned with later
                :meth:`document_vector` calls.

        Raises:
            DataError: On an empty document collection.
        """
        if not documents:
            raise DataError("Doc2Vec.fit needs at least one document")
        self.vocab = Vocab.from_corpus(documents)
        vocab_size = len(self.vocab)
        counts = np.zeros(vocab_size)
        doc_ids = []
        for document in documents:
            ids = self.vocab.ids(document)
            doc_ids.append(ids)
            for token_id in ids:
                counts[token_id] += 1
        counts[self.vocab.pad_id] = 0
        powered = counts ** 0.75
        self._noise = powered / powered.sum() if powered.sum() else None

        scale = 0.5 / self.dim
        self.doc_vectors = self._rng.uniform(
            -scale, scale, size=(len(documents), self.dim))
        self.word_out = np.zeros((vocab_size, self.dim))

        for _ in range(self.epochs):
            order = self._rng.permutation(len(doc_ids))
            for doc_index in order:
                self._train_document(int(doc_index), doc_ids[doc_index])
        return self

    def _train_document(self, doc_index: int, word_ids: list[int]) -> None:
        if not word_ids or self._noise is None:
            return
        doc_vec = self.doc_vectors[doc_index]
        for word_id in word_ids:
            negatives = self._rng.choice(
                len(self._noise), size=self.negatives, p=self._noise)
            targets = np.concatenate([[word_id], negatives])
            labels = np.zeros(len(targets))
            labels[0] = 1.0
            out = self.word_out[targets]
            gradient = (_sigmoid(out @ doc_vec) - labels)[:, None]
            grad_doc = (gradient * out).sum(axis=0)
            self.word_out[targets] -= self.lr * gradient * doc_vec
            doc_vec -= self.lr * grad_doc

    def document_vector(self, index: int) -> np.ndarray:
        """Vector of the ``index``-th training document."""
        if self.doc_vectors is None:
            raise NotFittedError("Doc2Vec has not been fitted")
        return self.doc_vectors[index]

    def infer_vector(self, document: Sequence[str], steps: int = 25) -> np.ndarray:
        """Infer a vector for an unseen document by gradient steps on a
        fresh document vector with word vectors frozen."""
        if self.vocab is None or self.word_out is None or self._noise is None:
            raise NotFittedError("Doc2Vec has not been fitted")
        vector = self._rng.uniform(-0.5 / self.dim, 0.5 / self.dim, size=self.dim)
        word_ids = self.vocab.ids(document)
        if not word_ids:
            return vector
        for _ in range(steps):
            for word_id in word_ids:
                negatives = self._rng.choice(
                    len(self._noise), size=self.negatives, p=self._noise)
                targets = np.concatenate([[word_id], negatives])
                labels = np.zeros(len(targets))
                labels[0] = 1.0
                out = self.word_out[targets]
                gradient = (_sigmoid(out @ vector) - labels)[:, None]
                vector -= self.lr * (gradient * out).sum(axis=0)
        return vector

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity helper for comparing document vectors."""
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(a @ b / denom)
