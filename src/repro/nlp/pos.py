"""A lexicon- and suffix-rule part-of-speech tagger.

Substitutes the Stanford POS tagger the paper uses for its POS-tag feature
embeddings (Figs 5, 6, 8).  A small closed-class lexicon plus English
suffix heuristics is plenty for feature purposes on the synthetic corpus.
"""

from __future__ import annotations

from typing import Sequence

TAGS = ("NOUN", "ADJ", "VERB", "PREP", "DET", "CONJ", "NUM", "PRON", "OTHER")

_CLOSED_CLASS = {
    "for": "PREP", "in": "PREP", "on": "PREP", "at": "PREP", "with": "PREP",
    "from": "PREP", "of": "PREP", "to": "PREP", "under": "PREP", "by": "PREP",
    "the": "DET", "a": "DET", "an": "DET", "this": "DET", "that": "DET",
    "and": "CONJ", "or": "CONJ", "but": "CONJ",
    "you": "PRON", "your": "PRON", "his": "PRON", "her": "PRON", "my": "PRON",
    "it": "PRON", "they": "PRON",
}

_ADJ_SUFFIXES = ("able", "ible", "ful", "ous", "ive", "ish", "less", "ic",
                 "al", "ant", "ent", "y", "proof", "resistant", "style")
_VERB_SUFFIXES = ("ing", "ize", "ise", "ify", "ate")
_NOUN_SUFFIXES = ("tion", "ment", "ness", "ity", "er", "or", "ist", "s")


class PosTagger:
    """Tags tokens with a coarse POS from :data:`TAGS`.

    Args:
        lexicon: Optional extra ``word -> tag`` entries that take priority
            over the suffix rules (the synthetic world registers its
            ground-truth adjectives/verbs here).
    """

    def __init__(self, lexicon: dict[str, str] | None = None):
        self._lexicon = dict(_CLOSED_CLASS)
        if lexicon:
            for word, tag in lexicon.items():
                if tag not in TAGS:
                    raise ValueError(f"unknown POS tag {tag!r} for {word!r}")
                self._lexicon[word] = tag

    def tag_word(self, word: str) -> str:
        """Tag a single token."""
        if word in self._lexicon:
            return self._lexicon[word]
        if word.replace(".", "", 1).replace("-", "", 1).isdigit():
            return "NUM"
        for suffix in _VERB_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return "VERB"
        for suffix in _ADJ_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 1:
                return "ADJ"
        for suffix in _NOUN_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 1:
                return "NOUN"
        return "NOUN"

    def tag(self, tokens: Sequence[str]) -> list[str]:
        """Tag a token sequence."""
        return [self.tag_word(token) for token in tokens]

    @staticmethod
    def tag_id(tag: str) -> int:
        """Stable integer id of a tag, for embedding lookups."""
        try:
            return TAGS.index(tag)
        except ValueError:
            return TAGS.index("OTHER")

    @staticmethod
    def num_tags() -> int:
        return len(TAGS)
