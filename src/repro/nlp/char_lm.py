"""Character-level n-gram language model.

Section 5.2.2: "character-level and word-level language models and some
heuristic rules are able to meet the goal" for four of the five concept
criteria.  The char LM handles *correctness* (criterion 5): a typo like
"brabecue" produces character transitions never seen in real product
language, spiking per-character perplexity — no closed word list needed.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from ..errors import DataError, NotFittedError

_BOW = "^"
_EOW = "$"


class CharTrigramModel:
    """Add-k smoothed character trigram model over words.

    Args:
        k: Additive smoothing mass.
    """

    def __init__(self, k: float = 0.05):
        if k <= 0:
            raise ValueError(f"smoothing k must be positive, got {k}")
        self.k = k
        self._trigram_counts: Counter[tuple[str, str, str]] = Counter()
        self._bigram_counts: Counter[tuple[str, str]] = Counter()
        self._charset: set[str] = set()
        self._fitted = False

    def fit(self, words: Iterable[str]) -> "CharTrigramModel":
        """Count character trigrams over a word collection.

        Raises:
            DataError: If no non-empty word is supplied.
        """
        seen_any = False
        for word in words:
            if not word:
                continue
            seen_any = True
            padded = f"{_BOW}{_BOW}{word}{_EOW}"
            self._charset.update(padded)
            for i in range(len(padded) - 2):
                trigram = (padded[i], padded[i + 1], padded[i + 2])
                self._trigram_counts[trigram] += 1
                self._bigram_counts[(padded[i], padded[i + 1])] += 1
        if not seen_any:
            raise DataError("char LM needs at least one non-empty word")
        self._fitted = True
        return self

    def log_probability(self, word: str) -> float:
        """Total smoothed log-probability of a word's character sequence."""
        if not self._fitted:
            raise NotFittedError("char LM has not been fitted")
        if not word:
            raise DataError("cannot score an empty word")
        vocab_size = len(self._charset) + 1
        padded = f"{_BOW}{_BOW}{word}{_EOW}"
        total = 0.0
        for i in range(len(padded) - 2):
            trigram = (padded[i], padded[i + 1], padded[i + 2])
            numerator = self._trigram_counts.get(trigram, 0) + self.k
            denominator = self._bigram_counts.get(trigram[:2], 0) \
                + self.k * vocab_size
            total += math.log(numerator / denominator)
        return total

    def perplexity(self, word: str) -> float:
        """Per-character perplexity of a word (lower = more word-like)."""
        return math.exp(-self.log_probability(word) / (len(word) + 1))

    def sequence_perplexity(self, tokens: Sequence[str]) -> float:
        """Geometric-mean perplexity over a token sequence's words."""
        if not tokens:
            raise DataError("cannot score an empty sequence")
        log_total = sum(math.log(self.perplexity(token)) for token in tokens)
        return math.exp(log_total / len(tokens))

    def most_suspicious(self, tokens: Sequence[str]) -> tuple[str, float]:
        """The token with the highest perplexity (the typo suspect)."""
        if not tokens:
            raise DataError("cannot score an empty sequence")
        scored = [(token, self.perplexity(token)) for token in tokens]
        return max(scored, key=lambda pair: pair[1])
