"""Quality phrase mining — the AutoPhrase [25] substitute.

The paper mines e-commerce concept candidates from queries, titles, reviews
and guides with AutoPhrase.  This implementation scores candidate n-grams
on the same signals AutoPhrase combines:

- *popularity*: raw frequency;
- *concordance*: pointwise mutual information of the n-gram against the
  best split into sub-phrases (collocation strength);
- *completeness*: how often the n-gram appears without being absorbed into
  a longer frequent n-gram.

The final score is the product of normalised signals; callers threshold it.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..errors import DataError
from ..utils.text import ngrams

_STOP_EDGE = {"for", "in", "on", "at", "with", "from", "of", "to", "and",
              "or", "the", "a", "an", "is", "it", "my", "this", "very",
              "really", "you", "will", "need", "i", "do", "what"}


@dataclass(frozen=True)
class ScoredPhrase:
    """A candidate phrase with its quality components."""

    tokens: tuple[str, ...]
    frequency: int
    concordance: float
    completeness: float

    @property
    def score(self) -> float:
        """Combined quality in [0, inf); higher is better."""
        return self.concordance * self.completeness

    @property
    def text(self) -> str:
        return " ".join(self.tokens)


class PhraseMiner:
    """Mines quality multi-word phrases from a tokenised corpus.

    Args:
        max_length: Longest phrase (in tokens) to consider.
        min_frequency: Minimum corpus frequency for a candidate.
    """

    def __init__(self, max_length: int = 4, min_frequency: int = 3):
        if max_length < 2:
            raise DataError("phrases need max_length >= 2")
        self.max_length = max_length
        self.min_frequency = min_frequency

    def mine(self, sentences: Sequence[Sequence[str]],
             top_k: int | None = None) -> list[ScoredPhrase]:
        """Return scored candidate phrases, best first.

        Args:
            sentences: Tokenised corpus.
            top_k: Optional cap on the number of results.

        Raises:
            DataError: On an empty corpus.
        """
        if not sentences:
            raise DataError("phrase mining needs a non-empty corpus")
        counts: dict[int, Counter] = {
            n: Counter() for n in range(1, self.max_length + 1)}
        total_tokens = 0
        for sentence in sentences:
            total_tokens += len(sentence)
            for n in range(1, self.max_length + 1):
                counts[n].update(ngrams(sentence, n))
        if total_tokens == 0:
            raise DataError("phrase mining needs non-empty sentences")

        results = []
        for n in range(2, self.max_length + 1):
            for gram, frequency in counts[n].items():
                if frequency < self.min_frequency:
                    continue
                if gram[0] in _STOP_EDGE or gram[-1] in _STOP_EDGE:
                    continue
                concordance = self._concordance(gram, frequency, counts, total_tokens)
                completeness = self._completeness(gram, frequency, counts)
                results.append(ScoredPhrase(gram, frequency, concordance, completeness))
        results.sort(key=lambda p: (-p.score, p.tokens))
        if top_k is not None:
            results = results[:top_k]
        return results

    def _concordance(self, gram: tuple[str, ...], frequency: int,
                     counts: dict[int, Counter], total_tokens: int) -> float:
        """Significance of the gram against its most likely binary split.

        AutoPhrase-style z-score: ``(observed - expected) / sqrt(observed)``
        where ``expected`` assumes the two halves co-occur independently.
        Unlike raw PMI this does not over-reward rare coincidences.
        """
        best_expected = 0.0
        for split in range(1, len(gram)):
            left, right = gram[:split], gram[split:]
            left_count = counts[len(left)].get(left, 0)
            right_count = counts[len(right)].get(right, 0)
            expected = left_count * right_count / total_tokens
            best_expected = max(best_expected, expected)
        return max(0.0, (frequency - best_expected) / math.sqrt(frequency))

    def _completeness(self, gram: tuple[str, ...], frequency: int,
                      counts: dict[int, Counter]) -> float:
        """1 - (how often this gram is absorbed by a longer frequent gram)."""
        if len(gram) == self.max_length:
            return 1.0
        absorbed = 0
        longer = counts[len(gram) + 1]
        for extension, extension_count in longer.items():
            if extension[:-1] == gram or extension[1:] == gram:
                absorbed = max(absorbed, extension_count)
        return max(0.0, 1.0 - absorbed / frequency)
