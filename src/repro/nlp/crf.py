"""Linear-chain CRF with an optional *fuzzy* likelihood (Eq. 8).

Used on top of the BiLSTM encoders for vocabulary mining (Fig 4) and
e-commerce concept tagging (Fig 6).  The fuzzy variant replaces the single
gold path in the numerator with the log-sum over *all* label sequences
compatible with per-position allowed-label sets — the paper's mechanism for
words like "village" that are valid under both ``Location`` and ``Style``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DataError, ShapeError
from ..ml.module import Module, Parameter
from ..ml.tensor import Tensor

_NEG_INF = -1e9


class LinearChainCRF(Module):
    """CRF layer over per-position label emissions.

    Args:
        num_labels: Size of the label set.
        rng: Generator for transition initialisation.
    """

    def __init__(self, num_labels: int, rng: np.random.Generator):
        super().__init__()
        if num_labels < 1:
            raise DataError(f"num_labels must be >= 1, got {num_labels}")
        self.num_labels = num_labels
        self.transitions = Parameter(rng.normal(0.0, 0.1, size=(num_labels, num_labels)))
        self.start_scores = Parameter(rng.normal(0.0, 0.1, size=num_labels))
        self.end_scores = Parameter(rng.normal(0.0, 0.1, size=num_labels))

    # ------------------------------------------------------------- internals
    def _check_emissions(self, emissions: Tensor) -> None:
        if emissions.ndim != 2 or emissions.shape[1] != self.num_labels:
            raise ShapeError(
                f"emissions must be (time, {self.num_labels}), got {emissions.shape}")
        if emissions.shape[0] == 0:
            raise DataError("CRF needs at least one time step")

    def _log_partition(self, emissions: Tensor,
                       allowed: Sequence[Sequence[int]] | None = None) -> Tensor:
        """Log-sum of path scores; restricted to ``allowed`` labels if given."""
        time = emissions.shape[0]
        masks = None
        if allowed is not None:
            masks = np.full((time, self.num_labels), _NEG_INF)
            for t, labels in enumerate(allowed):
                if not labels:
                    raise DataError(f"empty allowed-label set at position {t}")
                masks[t, list(labels)] = 0.0
        alpha = self.start_scores + emissions[0, :]
        if masks is not None:
            alpha = alpha + Tensor(masks[0])
        for t in range(1, time):
            step = emissions[t, :]
            if masks is not None:
                step = step + Tensor(masks[t])
            scores = alpha.reshape(self.num_labels, 1) + self.transitions + step
            alpha = scores.logsumexp(axis=0)
        return (alpha + self.end_scores).logsumexp(axis=0)

    def _path_score(self, emissions: Tensor, labels: Sequence[int]) -> Tensor:
        ids = np.asarray(labels, dtype=np.intp)
        positions = np.arange(len(ids))
        score = emissions[positions, ids].sum()
        score = score + self.start_scores[int(ids[0])] + self.end_scores[int(ids[-1])]
        if len(ids) > 1:
            score = score + self.transitions[ids[:-1], ids[1:]].sum()
        return score

    # ------------------------------------------------------------------- API
    def nll(self, emissions: Tensor, labels: Sequence[int]) -> Tensor:
        """Negative log-likelihood of one gold label sequence.

        Args:
            emissions: ``(time, num_labels)`` scores from the encoder.
            labels: Gold label ids, one per time step.
        """
        self._check_emissions(emissions)
        if len(labels) != emissions.shape[0]:
            raise ShapeError(
                f"{len(labels)} labels for {emissions.shape[0]} time steps")
        return self._log_partition(emissions) - self._path_score(emissions, labels)

    def fuzzy_nll(self, emissions: Tensor,
                  allowed: Sequence[Sequence[int]]) -> Tensor:
        """Fuzzy-CRF loss (Eq. 8): every path through the per-position
        allowed-label sets counts as gold.

        Args:
            emissions: ``(time, num_labels)`` scores from the encoder.
            allowed: For each position, the collection of acceptable labels.
        """
        self._check_emissions(emissions)
        if len(allowed) != emissions.shape[0]:
            raise ShapeError(
                f"{len(allowed)} allowed-sets for {emissions.shape[0]} time steps")
        numerator = self._log_partition(emissions, allowed=allowed)
        denominator = self._log_partition(emissions)
        return denominator - numerator

    def decode(self, emissions: np.ndarray) -> list[int]:
        """Viterbi-decode the best label sequence (pure numpy).

        Args:
            emissions: ``(time, num_labels)`` array of emission scores.
        """
        emissions = np.asarray(emissions, dtype=float)
        if emissions.ndim != 2 or emissions.shape[1] != self.num_labels:
            raise ShapeError(
                f"emissions must be (time, {self.num_labels}), got {emissions.shape}")
        time = emissions.shape[0]
        if time == 0:
            raise DataError("cannot decode an empty sequence")
        transitions = self.transitions.data
        delta = self.start_scores.data + emissions[0]
        backpointers = np.zeros((time, self.num_labels), dtype=np.intp)
        for t in range(1, time):
            scores = delta[:, None] + transitions + emissions[t][None, :]
            backpointers[t] = np.argmax(scores, axis=0)
            delta = scores[backpointers[t], np.arange(self.num_labels)]
        delta = delta + self.end_scores.data
        best_last = int(np.argmax(delta))
        path = [best_last]
        for t in range(time - 1, 0, -1):
            path.append(int(backpointers[t][path[-1]]))
        return list(reversed(path))
