"""NLP substrate: tokenisation, embeddings, language models, CRFs.

These components substitute the off-the-shelf NLP stack the paper relies on
(GloVe embeddings, Doc2vec, POS/NER taggers, a production BERT) with
from-scratch implementations at laptop scale.
"""

from .tokenizer import WordTokenizer, char_tokens
from .vocab import Vocab
from .embeddings import SkipGramEmbeddings
from .doc2vec import Doc2Vec
from .pos import PosTagger
from .ngram_lm import BigramLanguageModel, BidirectionalLanguageModel
from .char_lm import CharTrigramModel
from .segmentation import MaxMatchSegmenter, SegmentationResult
from .crf import LinearChainCRF
from .phrase_mining import PhraseMiner

__all__ = [
    "WordTokenizer", "char_tokens", "Vocab", "SkipGramEmbeddings", "Doc2Vec",
    "PosTagger", "BigramLanguageModel", "BidirectionalLanguageModel",
    "CharTrigramModel",
    "MaxMatchSegmenter", "SegmentationResult", "LinearChainCRF", "PhraseMiner",
]
