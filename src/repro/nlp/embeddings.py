"""Skip-gram-with-negative-sampling (SGNS) word embeddings.

These stand in for the paper's "word embeddings pretrained on e-commerce
corpus" / GloVe vectors: dense vectors where distributionally similar words
are close.  The trainer is plain numpy — one positive pair plus ``k``
negatives per update, with the unigram^0.75 negative-sampling distribution
of word2vec.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import NotFittedError
from .vocab import Vocab


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramEmbeddings:
    """Trainable SGNS embeddings over a fixed vocabulary.

    Args:
        vocab: The token vocabulary.
        dim: Embedding dimension.
        window: Max distance between centre and context word.
        negatives: Negative samples per positive pair.
        lr: SGD learning rate.
        seed: Seed for initialisation and sampling.
    """

    def __init__(self, vocab: Vocab, dim: int = 32, window: int = 3,
                 negatives: int = 5, lr: float = 0.05, seed: int = 0,
                 subsample: float = 1e-3):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.subsample = subsample
        self._rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.in_vectors = self._rng.uniform(-scale, scale, size=(len(vocab), dim))
        self.out_vectors = np.zeros((len(vocab), dim))
        self._fitted = False
        self._noise_distribution: np.ndarray | None = None

    def _build_noise(self, sentences: Sequence[Sequence[str]]) -> None:
        counts = np.zeros(len(self.vocab))
        for sentence in sentences:
            for token in sentence:
                counts[self.vocab.id(token)] += 1
        counts[self.vocab.pad_id] = 0
        powered = counts ** 0.75
        total = powered.sum()
        if total == 0:
            powered = np.ones_like(powered)
            powered[self.vocab.pad_id] = 0
            total = powered.sum()
        self._noise_distribution = powered / total

    def _keep_probabilities(self, vocab_ids: list[list[int]]) -> np.ndarray:
        """word2vec frequent-word subsampling: P(keep) = sqrt(t/f) + t/f.

        Without this, ultra-frequent corpus tokens ("for", colors) drag
        every vector toward one dominant direction and cosine similarities
        degenerate.
        """
        counts = np.zeros(len(self.vocab))
        total = 0
        for ids in vocab_ids:
            total += len(ids)
            for token_id in ids:
                counts[token_id] += 1
        if total == 0 or self.subsample <= 0:
            return np.ones(len(self.vocab))
        frequency = counts / total
        with np.errstate(divide="ignore", invalid="ignore"):
            keep = np.sqrt(self.subsample / frequency) + \
                self.subsample / frequency
        keep[~np.isfinite(keep)] = 1.0
        return np.clip(keep, 0.0, 1.0)

    def train(self, sentences: Sequence[Sequence[str]], epochs: int = 3) -> None:
        """Fit embeddings on tokenised sentences.

        Updates are applied pair-by-pair (true SGD), which at our corpus
        size is fast enough and converges more reliably than mini-batching
        for tiny vocabularies.
        """
        self._build_noise(sentences)
        noise = self._noise_distribution
        vocab_ids = [self.vocab.ids(sentence) for sentence in sentences]
        keep_probability = self._keep_probabilities(vocab_ids)
        for _ in range(epochs):
            order = self._rng.permutation(len(vocab_ids))
            for sentence_index in order:
                ids = [i for i in vocab_ids[sentence_index]
                       if self._rng.random() < keep_probability[i]]
                for position, centre in enumerate(ids):
                    start = max(0, position - self.window)
                    stop = min(len(ids), position + self.window + 1)
                    for context_position in range(start, stop):
                        if context_position == position:
                            continue
                        self._update(centre, ids[context_position], noise)
        self._fitted = True

    def _update(self, centre: int, context: int, noise: np.ndarray) -> None:
        negatives = self._rng.choice(len(noise), size=self.negatives, p=noise)
        targets = np.concatenate([[context], negatives])
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        centre_vec = self.in_vectors[centre]
        out = self.out_vectors[targets]
        scores = _sigmoid(out @ centre_vec)
        gradient = (scores - labels)[:, None]
        grad_centre = (gradient * out).sum(axis=0)
        self.out_vectors[targets] -= self.lr * gradient * centre_vec
        self.in_vectors[centre] -= self.lr * grad_centre

    # ----------------------------------------------------------------- reads
    def matrix(self) -> np.ndarray:
        """The (vocab, dim) input-embedding matrix (shared, not copied)."""
        if not self._fitted:
            raise NotFittedError("embeddings have not been trained")
        return self.in_vectors

    def centered_matrix(self) -> np.ndarray:
        """Mean-centered copy of the embedding matrix.

        Small-corpus SGNS concentrates all vectors around one dominant
        direction; removing the common mean ("all-but-the-top") restores
        discriminative cosine geometry.  Downstream phrase embeddings
        should prefer this view.
        """
        matrix = self.matrix()
        return matrix - matrix.mean(axis=0)

    def vector(self, token: str) -> np.ndarray:
        """Embedding of a token (UNK vector if unseen)."""
        if not self._fitted:
            raise NotFittedError("embeddings have not been trained")
        return self.in_vectors[self.vocab.id(token)]

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two token vectors."""
        a, b = self.vector(token_a), self.vector(token_b)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(a @ b / denom)

    def most_similar(self, token: str, top_k: int = 5) -> list[tuple[str, float]]:
        """Nearest tokens by cosine similarity (excluding the query/specials)."""
        query = self.vector(token)
        matrix = self.matrix()
        norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(query) or 1.0)
        norms[norms == 0] = 1.0
        scores = matrix @ query / norms
        query_id = self.vocab.id(token)
        scores[[self.vocab.pad_id, self.vocab.unk_id, query_id]] = -np.inf
        top = np.argsort(-scores)[:top_k]
        return [(self.vocab.token(int(i)), float(scores[i])) for i in top]
