"""Token vocabulary with PAD/UNK specials and frequency filtering."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..errors import VocabError

PAD = "<pad>"
UNK = "<unk>"


class Vocab:
    """Bidirectional token <-> id mapping.

    Id 0 is always ``<pad>`` and id 1 is always ``<unk>``.  Lookups of
    unknown tokens return the UNK id unless the vocabulary was built with
    ``strict=True``.
    """

    def __init__(self, tokens: Iterable[str], strict: bool = False):
        self._itos: list[str] = [PAD, UNK]
        seen = {PAD, UNK}
        for token in tokens:
            if token not in seen:
                seen.add(token)
                self._itos.append(token)
        self._stoi = {token: i for i, token in enumerate(self._itos)}
        self._strict = strict

    @classmethod
    def from_corpus(cls, sentences: Iterable[Sequence[str]],
                    min_freq: int = 1, max_size: int | None = None,
                    strict: bool = False) -> "Vocab":
        """Build a vocabulary from tokenised sentences.

        Tokens are ordered by descending frequency (ties by first
        occurrence is not guaranteed; ties break alphabetically for
        determinism).

        Args:
            sentences: Iterable of token sequences.
            min_freq: Minimum occurrence count to be included.
            max_size: Optional cap on vocabulary size (excluding specials).
            strict: If True, unknown lookups raise instead of mapping to UNK.
        """
        counts = Counter()
        for sentence in sentences:
            counts.update(sentence)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [token for token, freq in ranked if freq >= min_freq]
        if max_size is not None:
            kept = kept[:max_size]
        return cls(kept, strict=strict)

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def id(self, token: str) -> int:
        """Id of ``token`` (UNK id if unseen and not strict)."""
        if token in self._stoi:
            return self._stoi[token]
        if self._strict:
            raise VocabError(f"token {token!r} not in strict vocabulary")
        return self.unk_id

    def ids(self, tokens: Sequence[str]) -> list[int]:
        return [self.id(token) for token in tokens]

    def token(self, token_id: int) -> str:
        """Token string for an id.

        Raises:
            VocabError: If the id is out of range.
        """
        if not 0 <= token_id < len(self._itos):
            raise VocabError(f"id {token_id} out of range [0, {len(self._itos)})")
        return self._itos[token_id]

    def tokens(self) -> list[str]:
        """All tokens, including specials, in id order."""
        return list(self._itos)
