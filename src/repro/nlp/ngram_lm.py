"""N-gram language models and the "BERT perplexity" substitute.

The paper's Wide side (Fig 5) feeds "the perplexity of candidate concept
calculated by a BERT model specially trained on e-commerce corpus".  Our
substitute is a bidirectional bigram model: each position is scored from
both its left and right neighbour and the two directions are averaged in
log space — a masked-LM-shaped signal at n-gram cost.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from ..errors import DataError, NotFittedError

BOS = "<s>"
EOS = "</s>"


class BigramLanguageModel:
    """Add-k smoothed bigram model over word tokens."""

    def __init__(self, k: float = 0.1):
        if k <= 0:
            raise ValueError(f"smoothing k must be positive, got {k}")
        self.k = k
        self._bigram_counts: Counter[tuple[str, str]] = Counter()
        self._unigram_counts: Counter[str] = Counter()
        self._vocab_size = 0
        self._fitted = False

    def fit(self, sentences: Sequence[Sequence[str]]) -> "BigramLanguageModel":
        """Count n-grams over tokenised sentences (with BOS/EOS padding)."""
        if not sentences:
            raise DataError("language model needs a non-empty corpus")
        vocabulary = set()
        for sentence in sentences:
            padded = [BOS, *sentence, EOS]
            vocabulary.update(padded)
            for left, right in zip(padded[:-1], padded[1:]):
                self._bigram_counts[(left, right)] += 1
                self._unigram_counts[left] += 1
        self._vocab_size = len(vocabulary) + 1  # +1 for unseen words
        self._fitted = True
        return self

    def log_probability(self, left: str, right: str) -> float:
        """Smoothed ``log P(right | left)``."""
        if not self._fitted:
            raise NotFittedError("language model has not been fitted")
        numerator = self._bigram_counts.get((left, right), 0) + self.k
        denominator = self._unigram_counts.get(left, 0) + self.k * self._vocab_size
        return math.log(numerator / denominator)

    def sentence_log_probability(self, tokens: Sequence[str]) -> float:
        """Total log-probability of a sentence including BOS/EOS transitions."""
        padded = [BOS, *tokens, EOS]
        return sum(self.log_probability(left, right)
                   for left, right in zip(padded[:-1], padded[1:]))

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Per-token perplexity of a sentence (lower = more fluent)."""
        if not tokens:
            raise DataError("perplexity of an empty sentence is undefined")
        log_prob = self.sentence_log_probability(tokens)
        return math.exp(-log_prob / (len(tokens) + 1))


class BidirectionalLanguageModel:
    """Averages a forward and a backward bigram model (the BERT stand-in).

    Each position's score uses both left and right context, so disfluent
    word orders ("gift grandpa for christmas") are penalised from both
    sides, like a masked-LM pseudo-perplexity.
    """

    def __init__(self, k: float = 0.1):
        self.forward = BigramLanguageModel(k=k)
        self.backward = BigramLanguageModel(k=k)

    def fit(self, sentences: Sequence[Sequence[str]]) -> "BidirectionalLanguageModel":
        self.forward.fit(sentences)
        self.backward.fit([list(reversed(sentence)) for sentence in sentences])
        return self

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Geometric mean of forward and backward perplexities."""
        forward = self.forward.perplexity(tokens)
        backward = self.backward.perplexity(list(reversed(tokens)))
        return math.sqrt(forward * backward)
