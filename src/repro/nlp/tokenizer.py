"""Tokenisers.

The paper segments Chinese text into words and characters.  Our synthetic
corpus is English-like, so word tokenisation is whitespace-based over
normalised text, and the "char" granularity (used by the char-level BiLSTM
of Fig 5 and the char-CNN of Fig 6) is literal characters of each word.
"""

from __future__ import annotations

from ..utils.text import normalize_text


class WordTokenizer:
    """Normalises and splits text into word tokens."""

    def tokenize(self, text: str) -> list[str]:
        """Return the word tokens of ``text`` (may be empty)."""
        normalized = normalize_text(text)
        if not normalized:
            return []
        return normalized.split(" ")

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


def char_tokens(word: str) -> list[str]:
    """Characters of a single word (the char granularity of Figs 5-6)."""
    return list(word)
