"""Max-matching segmentation for distant supervision (Section 7.2).

The paper generates BiLSTM-CRF training data by max-matching text against
the existing primitive-concept lexicon with dynamic programming, assigning
IOB domain labels, and *keeping only sentences that match unambiguously*.
This module implements that matcher: a DP that maximises matched-token
coverage, with explicit ambiguity detection (multiple optimal segmentations
or multi-label phrases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

OUTSIDE = "O"


@dataclass
class Segment:
    """One matched span: tokens ``[start, stop)`` with candidate labels."""

    start: int
    stop: int
    labels: frozenset[str]

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass
class SegmentationResult:
    """Outcome of max-matching one sentence.

    Attributes:
        segments: Matched spans of one optimal segmentation.
        covered: Number of tokens covered by matched spans.
        ambiguous: True if several optimal segmentations exist or any
            matched phrase carries more than one candidate label.
    """

    segments: list[Segment] = field(default_factory=list)
    covered: int = 0
    ambiguous: bool = False

    def iob_labels(self, num_tokens: int) -> list[str]:
        """IOB labels for the sentence (``O`` outside all matched spans).

        Multi-label segments use their alphabetically-first label; callers
        that require unambiguous data should check :attr:`ambiguous` first.
        """
        labels = [OUTSIDE] * num_tokens
        for segment in self.segments:
            chosen = sorted(segment.labels)[0]
            labels[segment.start] = f"B-{chosen}"
            for position in range(segment.start + 1, segment.stop):
                labels[position] = f"I-{chosen}"
        return labels


class MaxMatchSegmenter:
    """Dynamic-programming maximal matcher over a phrase lexicon.

    Args:
        lexicon: Mapping from phrase (tuple of tokens) to the set of domain
            labels that phrase can take.
        max_phrase_length: Longest phrase to consider (defaults to the
            longest key in the lexicon).
    """

    def __init__(self, lexicon: Mapping[tuple[str, ...], frozenset[str] | set[str]],
                 max_phrase_length: int | None = None):
        self._lexicon = {tuple(k): frozenset(v) for k, v in lexicon.items()}
        if max_phrase_length is None:
            max_phrase_length = max((len(k) for k in self._lexicon), default=1)
        self._max_len = max(1, max_phrase_length)

    def segment(self, tokens: Sequence[str]) -> SegmentationResult:
        """Find an optimal segmentation of ``tokens``.

        The objective lexicographically maximises (covered tokens, then
        fewer segments, which prefers longer matches).  ``ambiguous`` is set
        when more than one segmentation attains the optimum or a matched
        phrase has multiple candidate labels.
        """
        n = len(tokens)
        # best[i]: (covered, -segments) achievable for suffix starting at i.
        best: list[tuple[int, int]] = [(0, 0)] * (n + 1)
        ways: list[int] = [0] * (n + 1)
        choice: list[tuple[int, frozenset[str]] | None] = [None] * (n + 1)
        ways[n] = 1
        for i in range(n - 1, -1, -1):
            # Option: leave token i outside.
            best[i] = best[i + 1]
            ways[i] = ways[i + 1]
            choice[i] = None
            for length in range(1, min(self._max_len, n - i) + 1):
                phrase = tuple(tokens[i:i + length])
                labels = self._lexicon.get(phrase)
                if labels is None:
                    continue
                covered, neg_segments = best[i + length]
                candidate = (covered + length, neg_segments - 1)
                if candidate > best[i]:
                    best[i] = candidate
                    ways[i] = ways[i + length]
                    choice[i] = (length, labels)
                elif candidate == best[i]:
                    ways[i] = ways[i] + ways[i + length]

        result = SegmentationResult(ambiguous=ways[0] > 1)
        position = 0
        while position < n:
            picked = choice[position]
            if picked is None:
                position += 1
                continue
            length, labels = picked
            if len(labels) > 1:
                result.ambiguous = True
            result.segments.append(Segment(position, position + length, labels))
            result.covered += length
            position += length
        return result

    def perfectly_matched(self, tokens: Sequence[str]) -> bool:
        """True when every token is covered by exactly one unambiguous label
        assignment — the paper's filter for distant-supervision sentences."""
        result = self.segment(tokens)
        return result.covered == len(tokens) and not result.ambiguous
