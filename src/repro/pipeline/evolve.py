"""Background evolution: mine -> classify -> link -> match -> publish.

The paper's net is "continuously growing"; the offline build
(:mod:`repro.pipeline.build`) only captures one snapshot of it.  This
module closes the loop at serving time.  An :class:`EvolutionDriver`
re-runs the construction stages against fresh synthetic corpus batches:

1. **mine** — candidate concepts from a new batch of queries and guides,
   via :class:`~repro.concepts.generation.CandidateGenerator` (quality
   phrases + pattern combination, Section 5.2.1);
2. **classify** — accept or reject each candidate.  The default is the
   ground-truth oracle (the repo's crowdsourcing substitute); wire in a
   trained Section 5.2.2 model with :func:`classifier_stage`;
3. **link** — INTERPRETED_BY edges from each accepted concept to the
   primitive concepts of its gold interpretation (Section 4.3);
4. **match** — ITEM_ECOMMERCE edges to catalog items via the Section 6
   ``item_matches_concept`` check, weighted like the offline build.

Accepted concepts and relations are staged into the serving tier's
:class:`~repro.kg.generations.GenerationalStore` open delta — invisible
to readers — and published as numbered generations on a size-or-interval
policy, against any target with a ``publish()`` method (the store itself,
an :class:`~repro.serving.AliCoCoService`, or an
:class:`~repro.serving.AliCoCoCluster`).

The driver runs on a background thread with a typed lifecycle
(:class:`EvolutionState`): ``pause()``/``resume()`` gate the loop,
``drain()`` publishes everything staged and stops, and repeated stage
failures back off exponentially before the driver wedges itself —
serving simply continues on the last good generation instead of
crashing.  ``run_cycle()`` is the same cycle exposed synchronously for
deterministic tests and scripts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Sequence

import numpy as np

from ..concepts.generation import CandidateGenerator
from ..errors import ConfigError
from ..kg.generations import GenerationalStore
from ..kg.ids import ECOMMERCE_PREFIX, PRIMITIVE_PREFIX
from ..kg.nodes import ECommerceConcept
from ..kg.relations import Relation, RelationKind
from ..synth.guides import generate_guides
from ..synth.items import SynthItem, item_matches_concept
from ..synth.queries import generate_queries
from ..synth.world import ConceptSpec, World
from ..utils.rng import derive_seed, spawn_rng
from ..utils.timing import LatencyReservoir

__all__ = [
    "CorpusBatch",
    "CycleReport",
    "EVOLUTION_STAGES",
    "EvolutionConfig",
    "EvolutionDriver",
    "EvolutionState",
    "EvolutionStats",
    "StageLatency",
    "classifier_stage",
]

#: The pipeline stages the driver meters, in execution order.
EVOLUTION_STAGES = ("mine", "classify", "link", "match", "publish")


class EvolutionState(Enum):
    """Lifecycle of the background loop."""

    STOPPED = "stopped"
    RUNNING = "running"
    PAUSED = "paused"
    DRAINING = "draining"
    WEDGED = "wedged"


@dataclass(frozen=True)
class EvolutionConfig:
    """Knobs for the evolution loop.

    Attributes:
        seed: Master seed; every cycle derives its own child seeds, so
            two drivers with the same seed mine identical batches.
        n_good / n_bad: Pattern-combined candidates per cycle (the bad
            share exercises the classify stage).
        n_queries / n_guides: Size of the fresh corpus batch per cycle.
        mined_top_k: Quality-phrase budget per batch.
        publish_min_nodes: Publish as soon as this many nodes are staged
            in the open delta (the *size* trigger).
        publish_max_interval: Publish any non-empty delta older than
            this many seconds (the *interval* trigger — keeps trickles
            from going stale).
        cycle_interval: Idle sleep between successful cycles.
        max_retries: Consecutive cycle failures tolerated before the
            driver wedges itself.
        backoff_base / backoff_max: Exponential backoff bounds between
            failed cycles, in seconds.
        match_items: Cap on catalog items scanned per accepted concept
            (``None`` scans the whole catalog handed to the driver).
    """

    seed: int = 7
    n_good: int = 4
    n_bad: int = 3
    n_queries: int = 40
    n_guides: int = 25
    mined_top_k: int = 20
    publish_min_nodes: int = 6
    publish_max_interval: float = 10.0
    cycle_interval: float = 0.05
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    match_items: int | None = None

    def __post_init__(self) -> None:
        for name in ("n_good", "n_queries", "n_guides", "publish_min_nodes",
                     "max_retries"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        for name in ("n_bad", "mined_top_k"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        for name in ("publish_max_interval", "cycle_interval",
                     "backoff_base", "backoff_max"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be >= 0")
        if self.match_items is not None and self.match_items < 0:
            raise ConfigError("match_items must be >= 0 or None")


@dataclass(frozen=True)
class CorpusBatch:
    """One cycle's fresh text batch plus its dedicated RNG."""

    cycle_index: int
    sentences: list[list[str]]
    rng: np.random.Generator


@dataclass(frozen=True)
class CycleReport:
    """Outcome of one mine->classify->link->match cycle.

    ``published_generation`` is the generation id minted by this cycle's
    publish, or ``None`` when the policy left the delta open.
    """

    cycle_index: int
    candidates: int
    accepted: int
    rejected: int
    duplicates: int
    links: int
    matches: int
    published_generation: int | None


@dataclass(frozen=True)
class StageLatency:
    """Wall-clock latency of one evolution stage.

    ``mine`` is metered per batch; ``classify``/``link``/``match`` per
    candidate; ``publish`` per actual generation flip (skipped publish
    checks do not record).

    Attributes:
        stage: One of :data:`EVOLUTION_STAGES`.
        calls: Stage invocations recorded so far.
        p50_ms / p95_ms / p99_ms: Latency percentiles over a uniform
            reservoir sample of all invocations.
    """

    stage: str
    calls: int
    p50_ms: float
    p95_ms: float
    p99_ms: float


@dataclass(frozen=True)
class EvolutionStats:
    """Point-in-time snapshot of the driver's counters."""

    state: EvolutionState
    cycles: int
    failures: int
    consecutive_failures: int
    concepts_accepted: int
    concepts_rejected: int
    relations_staged: int
    publishes: int
    generation_id: int
    open_nodes: int
    open_relations: int
    last_error: str
    retry_budget: int = 3
    stage_latency: tuple[StageLatency, ...] = ()

    @property
    def wedged(self) -> bool:
        """Whether the loop has burned its retry budget and stopped."""
        return self.state is EvolutionState.WEDGED

    def format_table(self) -> str:
        """Human-readable report: loop health, stage latency, wedge state."""
        lines = [
            f"evolution: {self.state.value}, {self.cycles} cycles, "
            f"{self.publishes} publishes, serving generation "
            f"{self.generation_id}",
            f"staged: {self.concepts_accepted} accepted / "
            f"{self.concepts_rejected} rejected concepts, "
            f"{self.relations_staged} relations; open delta "
            f"{self.open_nodes} nodes / {self.open_relations} relations",
        ]
        for stage in self.stage_latency:
            lines.append(
                f"stage {stage.stage:<9} {stage.calls:>6} calls, "
                f"p50 {stage.p50_ms:.2f}ms, p95 {stage.p95_ms:.2f}ms, "
                f"p99 {stage.p99_ms:.2f}ms"
            )
        if self.wedged:
            lines.append(
                f"wedge: WEDGED after {self.consecutive_failures} "
                f"consecutive failures (budget {self.retry_budget}); "
                f"last error: {self.last_error or '-'}"
            )
        else:
            lines.append(
                f"wedge: clear ({self.consecutive_failures}/"
                f"{self.retry_budget} consecutive failures burned, "
                f"{self.failures} total"
                + (f"; last error: {self.last_error}" if self.last_error
                   else "")
                + ")"
            )
        return "\n".join(lines)


def classifier_stage(classifier: Any,
                     threshold: float = 0.5) -> Callable[[ConceptSpec], bool]:
    """Acceptance check backed by a trained Section 5.2.2 classifier.

    Args:
        classifier: A fitted
            :class:`~repro.concepts.classifier.ConceptClassifier` (or
            anything with ``predict_proba(texts) -> array``).
        threshold: Acceptance probability cutoff.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError("threshold must be in [0, 1]")

    def classify(spec: ConceptSpec) -> bool:
        return float(classifier.predict_proba([spec.text])[0]) >= threshold

    return classify


class EvolutionDriver:
    """Grows a served net in the background, one generation at a time.

    Args:
        target: What to publish through — a
            :class:`~repro.kg.generations.GenerationalStore`, or an
            ``AliCoCoService`` / ``AliCoCoCluster`` built over one.  The
            driver stages writes into the target's generational store,
            so every ``publish()`` rebuilds the target's indexes too.
        world: Ground-truth world (candidate patterns, oracle, item
            matching all derive from it).
        items: Catalog :class:`~repro.synth.items.SynthItem` objects the
            match stage scans (usually ``result.corpus.items``).
        item_ids: ``item.index -> node id`` mapping for those items
            (usually ``result.item_ids``).
        config: Loop knobs.
        mine / classify / link / match: Optional stage overrides; each
            defaults to the construction-pipeline behaviour described in
            the module docstring.  Signatures::

                mine(batch: CorpusBatch) -> Sequence[ConceptSpec]
                classify(spec: ConceptSpec) -> bool
                link(store, node, spec) -> int        # edges added
                match(store, node, spec, rng) -> int  # edges added

        clock: Monotonic clock, injectable for deterministic
            interval-policy tests.
    """

    def __init__(
        self,
        target: Any,
        world: World,
        items: Sequence[SynthItem] = (),
        item_ids: dict[int, str] | None = None,
        config: EvolutionConfig | None = None,
        *,
        mine: Callable[[CorpusBatch], Sequence[ConceptSpec]] | None = None,
        classify: Callable[[ConceptSpec], bool] | None = None,
        link: Callable[..., int] | None = None,
        match: Callable[..., int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or EvolutionConfig()
        self._target = target
        self._store = self._staging_store_of(target)
        self._world = world
        self._items = list(items)
        self._item_ids = dict(item_ids or {})
        self._mine = mine or self._default_mine
        self._classify = classify or self._default_classify
        self._link = link or self._default_link
        self._match = match or self._default_match
        self._clock = clock
        self._generator = CandidateGenerator(world)
        self._stage_rtt = {
            stage: LatencyReservoir(256, seed=index)
            for index, stage in enumerate(EVOLUTION_STAGES)
        }
        self._primitive_ids: dict[tuple[str, str], str | None] = {}
        self._staged_texts: set[str] = set()
        self._cycle_index = 0

        self._cond = threading.Condition()
        self._cycle_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._state = EvolutionState.STOPPED
        self._last_publish = clock()
        self._cycles = 0
        self._failures = 0
        self._consecutive_failures = 0
        self._accepted = 0
        self._rejected = 0
        self._relations_staged = 0
        self._publishes = 0
        self._last_error = ""

    @classmethod
    def from_build(cls, result: Any, target: Any,
                   **kwargs: Any) -> "EvolutionDriver":
        """Driver over a :class:`~repro.pipeline.build.BuildResult`."""
        return cls(target, result.world, items=result.corpus.items,
                   item_ids=dict(result.item_ids), **kwargs)

    @staticmethod
    def _staging_store_of(target: Any) -> GenerationalStore:
        source = getattr(target, "source", None)
        if isinstance(source, GenerationalStore):
            return source
        if isinstance(target, GenerationalStore):
            return target
        store = getattr(target, "store", None)
        if isinstance(store, GenerationalStore):
            return store
        raise ConfigError(
            "EvolutionDriver needs a publish target backed by a "
            "GenerationalStore: the store itself, or a service/cluster "
            "built over one (frozen stores cannot grow)"
        )

    # ------------------------------------------------------- default stages
    def _fresh_batch(self, cycle_index: int) -> CorpusBatch:
        """A new text batch: every cycle sees sentences no cycle saw."""
        seed = derive_seed(self.config.seed, "evolve-batch", str(cycle_index))
        rng = spawn_rng(self.config.seed, "evolve-cycle", str(cycle_index))
        topics = self._world.sample_good_concepts(
            rng, max(2, self.config.n_good))
        queries = generate_queries(self._world, topics,
                                   self.config.n_queries, seed=seed)
        guides = generate_guides(self._world, topics,
                                 self.config.n_guides, seed=seed)
        sentences = [list(query.tokens) for query in queries] + guides
        return CorpusBatch(cycle_index=cycle_index, sentences=sentences,
                           rng=rng)

    def _default_mine(self, batch: CorpusBatch) -> Sequence[ConceptSpec]:
        """Section 5.2.1 candidate pool over the batch.

        Raw mined phrases have no gold interpretation to link, so only
        the pattern-combined specs continue down the pipeline; the
        phrase miner still runs so the batch's text is really mined.
        """
        specs, _mined, _report = self._generator.generate(
            batch.sentences, batch.rng, self.config.n_good,
            self.config.n_bad, mined_top_k=self.config.mined_top_k)
        return specs

    def _default_classify(self, spec: ConceptSpec) -> bool:
        """Crowdsourcing substitute: the world's ground-truth label."""
        return spec.good

    def _default_link(self, store: GenerationalStore, node: ECommerceConcept,
                      spec: ConceptSpec) -> int:
        """INTERPRETED_BY edges to the gold primitive senses."""
        links = 0
        for part in spec.parts:
            primitive_id = self._primitive_id(part.surface, part.domain)
            if primitive_id is None:
                continue
            store.add_relation(Relation(
                RelationKind.INTERPRETED_BY, node.id, primitive_id,
                name=part.domain))
            links += 1
        return links

    def _default_match(self, store: GenerationalStore,
                       node: ECommerceConcept, spec: ConceptSpec,
                       rng: np.random.Generator) -> int:
        """ITEM_ECOMMERCE edges from matching catalog items."""
        matches = 0
        items = self._items
        if self.config.match_items is not None:
            items = items[: self.config.match_items]
        for item in items:
            item_id = self._item_ids.get(item.index)
            if item_id is None:
                continue
            if item_matches_concept(self._world, item, spec):
                weight = float(np.clip(rng.normal(0.8, 0.1), 0.05, 1.0))
                store.add_relation(Relation(
                    RelationKind.ITEM_ECOMMERCE, item_id, node.id,
                    weight=weight))
                matches += 1
        return matches

    def _primitive_id(self, surface: str, domain: str) -> str | None:
        key = (surface, domain)
        if key not in self._primitive_ids:
            found = None
            for node in self._store.find_by_name(PRIMITIVE_PREFIX, surface):
                if getattr(node, "domain", None) == domain:
                    found = node.id
                    break
            self._primitive_ids[key] = found
        return self._primitive_ids[key]

    def _is_known(self, text: str) -> bool:
        return (text in self._staged_texts
                or bool(self._store.find_by_name(ECOMMERCE_PREFIX, text)))

    def _timed(self, stage: str, call: Callable[[], Any]) -> Any:
        """Run one stage invocation under its latency reservoir."""
        start = time.perf_counter()
        try:
            return call()
        finally:
            self._stage_rtt[stage].record(time.perf_counter() - start)

    # --------------------------------------------------------------- cycles
    def run_cycle(self) -> CycleReport:
        """Run one full cycle synchronously and apply the publish policy.

        Deterministic given the config seed and cycle number; the
        background loop calls exactly this, so scripted tests and the
        thread produce identical stores.
        """
        with self._cycle_lock:
            cycle_index = self._cycle_index
            self._cycle_index += 1
            batch = self._fresh_batch(cycle_index)
            candidates = list(
                self._timed("mine", lambda: self._mine(batch)))
            accepted = rejected = duplicates = links = matches = 0
            for spec in candidates:
                if not self._timed(
                        "classify", lambda s=spec: self._classify(s)):
                    rejected += 1
                    continue
                if self._is_known(spec.text):
                    duplicates += 1
                    continue
                node = self._store.create_ecommerce(spec.text,
                                                    source=spec.pattern)
                self._staged_texts.add(spec.text)
                accepted += 1
                links += int(self._timed(
                    "link",
                    lambda n=node, s=spec: self._link(self._store, n, s)))
                matches += int(self._timed(
                    "match",
                    lambda n=node, s=spec: self._match(
                        self._store, n, s, batch.rng)))
            with self._cond:
                self._cycles += 1
                self._accepted += accepted
                self._rejected += rejected
                self._relations_staged += links + matches
            published = self._maybe_publish()
        return CycleReport(
            cycle_index=cycle_index, candidates=len(candidates),
            accepted=accepted, rejected=rejected, duplicates=duplicates,
            links=links, matches=matches, published_generation=published)

    def _maybe_publish(self, force: bool = False) -> int | None:
        with self._publish_lock:
            open_nodes, open_relations = self._store.open_counts
            waiting = open_nodes + open_relations
            if not force:
                if waiting == 0:
                    return None
                due_size = open_nodes >= self.config.publish_min_nodes
                elapsed = self._clock() - self._last_publish
                due_time = elapsed >= self.config.publish_max_interval
                if not (due_size or due_time):
                    return None
            generation_id = int(
                self._timed("publish", self._target.publish))
            self._last_publish = self._clock()
            with self._cond:
                if waiting:
                    self._publishes += 1
                self._staged_texts.clear()
            return generation_id

    # ------------------------------------------------------------ lifecycle
    @property
    def state(self) -> EvolutionState:
        with self._cond:
            return self._state

    def start(self) -> None:
        """Start (or restart) the background loop.

        Raises:
            ConfigError: If the loop is already running.
        """
        with self._cond:
            if self._thread is not None and self._thread.is_alive():
                raise ConfigError(
                    f"evolution driver is already {self._state.value}")
            self._consecutive_failures = 0
            self._last_error = ""
            self._state = EvolutionState.RUNNING
            self._thread = threading.Thread(
                target=self._run_loop, name="evolution-driver", daemon=True)
            self._thread.start()

    def pause(self) -> None:
        """Hold the loop between cycles; readers are unaffected."""
        with self._cond:
            if self._state is not EvolutionState.RUNNING:
                raise ConfigError(
                    f"cannot pause from state {self._state.value!r}")
            self._state = EvolutionState.PAUSED
            self._cond.notify_all()

    def resume(self) -> None:
        """Resume a paused loop, or restart a wedged one."""
        restart = False
        with self._cond:
            if self._state is EvolutionState.PAUSED:
                self._state = EvolutionState.RUNNING
                self._cond.notify_all()
            elif self._state is EvolutionState.WEDGED:
                self._consecutive_failures = 0
                self._last_error = ""
                self._state = EvolutionState.RUNNING
                restart = self._thread is None or not self._thread.is_alive()
            else:
                raise ConfigError(
                    f"cannot resume from state {self._state.value!r}")
            if restart:
                self._thread = threading.Thread(
                    target=self._run_loop, name="evolution-driver",
                    daemon=True)
                self._thread.start()

    def drain(self, timeout: float | None = 10.0) -> int:
        """Publish everything staged, stop the loop, and return the
        published generation id.

        From a running loop the in-flight cycle finishes first; from a
        stopped or wedged driver the flush happens inline.
        """
        thread = None
        with self._cond:
            if self._state in (EvolutionState.RUNNING, EvolutionState.PAUSED,
                               EvolutionState.DRAINING):
                self._state = EvolutionState.DRAINING
                self._cond.notify_all()
                thread = self._thread
            else:
                self._state = EvolutionState.STOPPED
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            if thread.is_alive():
                raise ConfigError("drain timed out mid-cycle; the loop "
                                  "will still flush and stop")
        else:
            self._maybe_publish(force=True)
        return self._store.generation_id

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the loop without a final publish.

        Staged work stays in the open delta: a later ``drain()`` or an
        external ``publish()`` can still ship it.
        """
        with self._cond:
            thread = self._thread
            self._state = EvolutionState.STOPPED
            self._cond.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def stats(self) -> EvolutionStats:
        """A consistent snapshot of counters plus the open-delta size."""
        open_nodes, open_relations = self._store.open_counts
        stage_latency = []
        for stage in EVOLUTION_STAGES:
            reservoir = self._stage_rtt[stage]
            summary = reservoir.percentiles_ms()
            stage_latency.append(StageLatency(
                stage=stage, calls=reservoir.count,
                p50_ms=summary["p50"], p95_ms=summary["p95"],
                p99_ms=summary["p99"]))
        with self._cond:
            return EvolutionStats(
                state=self._state, cycles=self._cycles,
                failures=self._failures,
                consecutive_failures=self._consecutive_failures,
                concepts_accepted=self._accepted,
                concepts_rejected=self._rejected,
                relations_staged=self._relations_staged,
                publishes=self._publishes,
                generation_id=self._store.generation_id,
                open_nodes=open_nodes, open_relations=open_relations,
                last_error=self._last_error,
                retry_budget=self.config.max_retries,
                stage_latency=tuple(stage_latency))

    # ------------------------------------------------------ background loop
    def _run_loop(self) -> None:
        while True:
            with self._cond:
                while self._state is EvolutionState.PAUSED:
                    self._cond.wait()
                state = self._state
            if state in (EvolutionState.STOPPED, EvolutionState.WEDGED):
                return
            if state is EvolutionState.DRAINING:
                try:
                    self._maybe_publish(force=True)
                finally:
                    with self._cond:
                        self._state = EvolutionState.STOPPED
                        self._cond.notify_all()
                return
            try:
                self.run_cycle()
            except Exception as error:  # noqa: BLE001 — degrade, don't crash
                wedged = self._record_failure(error)
                if wedged:
                    return
                continue
            with self._cond:
                self._consecutive_failures = 0
            self._sleep(self.config.cycle_interval)

    def _record_failure(self, error: Exception) -> bool:
        """Count a failed cycle; back off, or wedge past the retry budget.

        A wedged driver stops staging and publishing but leaves the last
        good generation serving — degradation, not an outage.
        """
        with self._cond:
            self._failures += 1
            self._consecutive_failures += 1
            self._last_error = f"{type(error).__name__}: {error}"
            if self._consecutive_failures >= self.config.max_retries:
                if self._state is EvolutionState.RUNNING:
                    self._state = EvolutionState.WEDGED
                    self._cond.notify_all()
                    return True
                return False
            exponent = self._consecutive_failures - 1
        delay = min(self.config.backoff_max,
                    self.config.backoff_base * (2.0 ** exponent))
        self._sleep(delay)
        return False

    def _sleep(self, delay: float) -> None:
        if delay <= 0.0:
            return
        with self._cond:
            if self._state is EvolutionState.RUNNING:
                self._cond.wait(delay)
