"""End-to-end construction of the AliCoCo net."""

from .build import build_alicoco, BuildResult

__all__ = ["build_alicoco", "BuildResult"]
