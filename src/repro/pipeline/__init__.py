"""End-to-end construction and evolution of the AliCoCo net."""

from .build import build_alicoco, BuildResult
from .evolve import (
    CorpusBatch,
    CycleReport,
    EVOLUTION_STAGES,
    EvolutionConfig,
    EvolutionDriver,
    EvolutionState,
    EvolutionStats,
    StageLatency,
    classifier_stage,
)

__all__ = [
    "build_alicoco",
    "BuildResult",
    "CorpusBatch",
    "CycleReport",
    "EVOLUTION_STAGES",
    "EvolutionConfig",
    "EvolutionDriver",
    "EvolutionState",
    "EvolutionStats",
    "StageLatency",
    "classifier_stage",
]
