"""Build the full four-layer net for a run scale.

The paper constructs AliCoCo semi-automatically: models propose, humans
verify, verified data enters the net.  This orchestrator plays the same
movie at synthetic scale — the proposal stage can come from the world's
ground truth (fast, default: it corresponds to model output *after* the
paper's human-verification gate) and the relations are materialised into
an :class:`~repro.kg.store.AliCoCoStore`:

1. the 20-domain taxonomy (Section 3);
2. primitive concepts for every lexicon sense, with INSTANCE_OF edges and
   isA edges inside Category (Section 4);
3. e-commerce concepts with INTERPRETED_BY edges to the correct
   primitive-concept *senses* (Section 5);
4. items with ITEM_PRIMITIVE edges from their attributes and
   ITEM_ECOMMERCE edges from scenario membership (Section 6), weighted by
   simulated click-through rates.

Stage 4 and the concept-isA pass are the hot paths at scale.  By default
they run retrieval-then-verify over the inverted indexes in
:mod:`repro.synth.index` (near-linear in items); the brute-force
all-pairs scans stay callable via ``use_candidate_index=False`` and are
guaranteed — and tested — to produce an identical store.  Every build
records per-stage wall times in a :class:`~repro.utils.timing.StageTimer`
exposed as ``BuildResult.timings``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RunScale
from ..kg.relations import Relation, RelationKind
from ..kg.store import AliCoCoStore
from ..synth.corpus import Corpus, build_corpus
from ..synth.index import ConceptCandidateIndex, PartSignatureIndex
from ..synth.items import SynthItem, item_matches_concept
from ..synth.lexicon import Lexicon, build_lexicon
from ..synth.world import ConceptSpec, World
from ..taxonomy.builder import build_taxonomy, TaxonomyIndex
from ..utils.rng import spawn_rng
from ..utils.timing import StageTimer


@dataclass
class BuildResult:
    """Everything produced by one construction run.

    Attributes:
        store: The populated net.
        world: The ground-truth world behind it.
        lexicon: The world's lexicon.
        corpus: Generated corpus (items, queries, reviews, guides).
        concepts: The good e-commerce concepts that were admitted.
        taxonomy: Class-name index.
        primitive_ids: (surface, domain) -> primitive-concept node id.
        concept_ids: concept text -> e-commerce node id.
        item_ids: catalog index -> item node id.
        timings: Per-stage wall-clock seconds for this build.
    """

    store: AliCoCoStore
    world: World
    lexicon: Lexicon
    corpus: Corpus
    concepts: list[ConceptSpec]
    taxonomy: TaxonomyIndex
    primitive_ids: dict[tuple[str, str], str] = field(default_factory=dict)
    concept_ids: dict[str, str] = field(default_factory=dict)
    item_ids: dict[int, str] = field(default_factory=dict)
    timings: StageTimer = field(default_factory=StageTimer)


def build_alicoco(scale: RunScale, n_concepts: int | None = None,
                  mine_implicit: bool = True,
                  use_candidate_index: bool = True,
                  timer: StageTimer | None = None) -> BuildResult:
    """Construct the net at the given scale.

    Args:
        scale: Size preset (items/corpus/concept counts derive from it).
        n_concepts: Override for the number of e-commerce concepts.
        mine_implicit: Also mine probabilistic commonsense relations
            ("T-shirt suitable_when summer") per the paper's future work.
        use_candidate_index: Route item-concept matching and concept-isA
            discovery through the inverted candidate indexes (default).
            ``False`` keeps the brute-force all-pairs scans, which produce
            an identical store — useful for parity tests and benchmarks.
        timer: Stage timer to record into (a fresh one is created when
            omitted); also exposed as ``BuildResult.timings``.
    """
    timer = timer if timer is not None else StageTimer()
    with timer.stage("world"):
        lexicon = build_lexicon(seed=scale.seed, n_brands=scale.n_brands,
                                n_ips=scale.n_ips)
        world = World(lexicon, seed=scale.seed)
        rng = spawn_rng(scale.seed, "build")
        if n_concepts is None:
            n_concepts = max(40, scale.n_items // 8)
        concepts = world.sample_good_concepts(rng, n_concepts)
    with timer.stage("corpus"):
        corpus = build_corpus(world, concepts, scale)

    store = AliCoCoStore()
    with timer.stage("taxonomy"):
        taxonomy = build_taxonomy(store)
    result = BuildResult(store=store, world=world, lexicon=lexicon,
                         corpus=corpus, concepts=concepts, taxonomy=taxonomy,
                         timings=timer)

    with timer.stage("primitive-layer"):
        _add_primitive_layer(result)
    with timer.stage("concept-layer"):
        _add_concept_layer(result, use_candidate_index)
    with timer.stage("item-layer"):
        _add_item_layer(result, rng, use_candidate_index)
    if mine_implicit:
        with timer.stage("implicit-relations"):
            _add_implicit_relations(result)
    return result


def _add_implicit_relations(result: BuildResult) -> None:
    """Mine probabilistic commonsense relations between primitive concepts
    (the paper's future-work items 1 and 2)."""
    from ..mining.implicit import ImplicitRelationMiner

    miner = ImplicitRelationMiner(min_probability=0.6, min_support=3)
    for mined in miner.mine(result.corpus.items):
        source = result.primitive_ids.get((mined.source, "Category"))
        target = result.primitive_ids.get((mined.target, mined.target_domain))
        if source is None or target is None:
            continue
        result.store.add_relation(Relation(
            RelationKind.RELATED_PRIMITIVE, source, target,
            weight=mined.probability, name=mined.name))


def _add_primitive_layer(result: BuildResult) -> None:
    """Primitive concepts for every lexicon sense + Category isA edges."""
    store, taxonomy = result.store, result.taxonomy
    for entry in result.lexicon.entries:
        class_id = taxonomy.by_name.get(entry.class_name)
        if class_id is None:
            class_id = taxonomy.leaf_class_of_domain[entry.domain]
        node = store.create_primitive(entry.surface, class_id)
        result.primitive_ids[(entry.surface, entry.domain)] = node.id
    for hyponym, hypernym in result.lexicon.hypernym_pairs("Category"):
        source = result.primitive_ids[(hyponym, "Category")]
        target = result.primitive_ids[(hypernym, "Category")]
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, source, target))


def _add_concept_layer(result: BuildResult, use_candidate_index: bool) -> None:
    """E-commerce concepts + interpretation links to the correct senses."""
    store = result.store
    for spec in result.concepts:
        node = store.create_ecommerce(spec.text, source=spec.pattern)
        result.concept_ids[spec.text] = node.id
        for part in spec.parts:
            primitive_id = result.primitive_ids.get((part.surface, part.domain))
            if primitive_id is not None:
                store.add_relation(Relation(
                    RelationKind.INTERPRETED_BY, node.id, primitive_id,
                    name=part.domain))
    with result.timings.stage("concept-isa"):
        if use_candidate_index:
            _add_concept_isa_indexed(result)
        else:
            _add_concept_isa(result)


def _add_concept_isa(result: BuildResult) -> None:
    """Brute-force isA discovery: compare every concept pair.  A concept
    whose parts are a strict superset of another's (same senses) is the
    more specific one."""
    store = result.store
    signatures: dict[str, frozenset[tuple[str, str]]] = {}
    for spec in result.concepts:
        signatures[spec.text] = frozenset(
            (p.surface, p.domain) for p in spec.parts)
    texts = list(signatures)
    for narrow in texts:
        for broad in texts:
            if narrow == broad:
                continue
            if signatures[broad] and signatures[broad] < signatures[narrow]:
                store.add_relation(Relation(
                    RelationKind.ISA_ECOMMERCE,
                    result.concept_ids[narrow], result.concept_ids[broad]))


def _add_concept_isa_indexed(result: BuildResult) -> None:
    """Subset-lookup isA discovery over a part-signature index; produces
    the same edges as :func:`_add_concept_isa` in the same order."""
    store = result.store
    index = PartSignatureIndex(result.concepts)
    for spec in result.concepts:
        for broad in index.broader_than(spec.text):
            store.add_relation(Relation(
                RelationKind.ISA_ECOMMERCE,
                result.concept_ids[spec.text], result.concept_ids[broad]))


def _add_item_layer(result: BuildResult, rng: np.random.Generator,
                    use_candidate_index: bool) -> None:
    """Items, their primitive tags, and scenario associations.

    Scenario matching (the items x concepts hot path) runs retrieval-then-
    verify by default: an inverted index proposes candidate concepts per
    item and only those are verified with ``item_matches_concept``.
    Candidates come back in original concept order, so the weight RNG is
    consumed identically to the brute-force scan and both paths build the
    exact same store.
    """
    store, world = result.store, result.world
    timer = result.timings
    index = (ConceptCandidateIndex(result.concepts)
             if use_candidate_index else None)
    for item in result.corpus.items:
        with timer.stage("item-nodes"):
            node = store.create_item(item.title,
                                     shop=f"shop_{item.index % 20}",
                                     properties=_properties_of(item))
            result.item_ids[item.index] = node.id
            for surface, domain in item.primitive_surfaces():
                primitive_id = result.primitive_ids.get((surface, domain))
                if primitive_id is not None:
                    store.add_relation(Relation(
                        RelationKind.ITEM_PRIMITIVE, node.id, primitive_id))
        with timer.stage("item-matching"):
            pool = (index.candidates(item) if index is not None
                    else result.concepts)
            for spec in pool:
                if item_matches_concept(world, item, spec):
                    weight = float(np.clip(rng.normal(0.8, 0.1), 0.05, 1.0))
                    store.add_relation(Relation(
                        RelationKind.ITEM_ECOMMERCE, node.id,
                        result.concept_ids[spec.text], weight=weight))


def _properties_of(item: SynthItem) -> dict[str, str]:
    properties = {"Category": item.category}
    for key, value in (("Brand", item.brand), ("Color", item.color),
                       ("Material", item.material), ("Style", item.style),
                       ("Pattern", item.pattern), ("Quantity", item.quantity)):
        if value is not None:
            properties[key] = value
    return properties
