"""Command-line entry point.

Usage:
    python -m repro build [tiny|small|bench]    build a net, print stats
    python -m repro ask "<question>"            answer a shopping question
    python -m repro search "<query>"            run a semantic search
"""

from __future__ import annotations

import sys

from .apps.qa import ConceptQA
from .apps.search import SemanticSearchEngine
from .config import get_scale, TINY
from .pipeline.build import build_alicoco


def _build(scale_name: str):
    scale = get_scale(scale_name)
    print(f"building AliCoCo at scale {scale.name!r} ...", file=sys.stderr)
    return build_alicoco(scale)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = args[0]
    if command == "build":
        scale_name = args[1] if len(args) > 1 else "tiny"
        result = _build(scale_name)
        print(result.store.stats().summary())
        return 0
    if command == "ask":
        if len(args) < 2:
            print("usage: python -m repro ask \"<question>\"")
            return 2
        result = build_alicoco(TINY)
        print(ConceptQA(result.store).answer(args[1]).render())
        return 0
    if command == "search":
        if len(args) < 2:
            print("usage: python -m repro search \"<query>\"")
            return 2
        result = build_alicoco(TINY)
        outcome = SemanticSearchEngine(result.store).search(args[1])
        if outcome.concept_card is not None:
            print(f"[concept card] {outcome.concept_card.text}")
            for item in outcome.card_items[:5]:
                print(f"   - {item.title}")
        for item in outcome.items[:5]:
            print(f" {item.title}")
        return 0
    print(f"unknown command {command!r}")
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
