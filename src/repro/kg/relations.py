"""Typed relations between AliCoCo nodes.

The endpoint layers of every relation kind are enforced by the store, which
is what the paper means by AliCoCo being "a KG with a type system" (unlike
Probase).  Relations carry an optional weight to support the paper's
future-work item of probabilistic edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ids import CLASS_PREFIX, ECOMMERCE_PREFIX, ITEM_PREFIX, PRIMITIVE_PREFIX


class RelationKind(enum.Enum):
    """Every edge type in the net; values are (source_layer, target_layer,
    discriminator) — the third element only keeps enum members distinct."""

    #: class -> parent class (the taxonomy hierarchy of Section 3)
    SUBCLASS_OF = (CLASS_PREFIX, CLASS_PREFIX, "subclass_of")
    #: primitive concept -> its class
    INSTANCE_OF = (PRIMITIVE_PREFIX, CLASS_PREFIX, "instance_of")
    #: primitive concept -> primitive concept hypernym (Section 4.2)
    ISA_PRIMITIVE = (PRIMITIVE_PREFIX, PRIMITIVE_PREFIX, "isa")
    #: primitive concept -> primitive concept commonsense relation mined
    #: per the paper's future work ("T-shirt suitable_when summer"); the
    #: relation name and probability live on the edge
    RELATED_PRIMITIVE = (PRIMITIVE_PREFIX, PRIMITIVE_PREFIX, "related")
    #: e-commerce concept -> broader e-commerce concept
    ISA_ECOMMERCE = (ECOMMERCE_PREFIX, ECOMMERCE_PREFIX, "isa")
    #: e-commerce concept -> primitive concept interpreting it (Section 5.3)
    INTERPRETED_BY = (ECOMMERCE_PREFIX, PRIMITIVE_PREFIX, "interpreted_by")
    #: item -> primitive concept (property-style association)
    ITEM_PRIMITIVE = (ITEM_PREFIX, PRIMITIVE_PREFIX, "item_primitive")
    #: item -> e-commerce concept (scenario association, Section 6)
    ITEM_ECOMMERCE = (ITEM_PREFIX, ECOMMERCE_PREFIX, "item_ecommerce")
    #: class -> class schema relation such as suitable_when (Section 2)
    SCHEMA = (CLASS_PREFIX, CLASS_PREFIX, "schema")

    @property
    def source_layer(self) -> str:
        return self.value[0]

    @property
    def target_layer(self) -> str:
        return self.value[1]


@dataclass(frozen=True)
class Relation:
    """A directed, typed, optionally weighted and named edge.

    Attributes:
        kind: The relation type.
        source: Source node id.
        target: Target node id.
        weight: Confidence/probability in [0, 1].
        name: Optional sub-type, e.g. ``suitable_when`` for SCHEMA edges or
            the semantic role of an INTERPRETED_BY edge.
    """

    kind: RelationKind
    source: str
    target: str
    weight: float = 1.0
    name: str = ""
