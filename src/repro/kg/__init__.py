"""The AliCoCo graph store: four node layers plus typed relations.

Layers (Figure 1 of the paper):

- taxonomy classes (:class:`~repro.kg.nodes.ClassNode`),
- primitive concepts (:class:`~repro.kg.nodes.PrimitiveConcept`),
- e-commerce concepts (:class:`~repro.kg.nodes.ECommerceConcept`),
- items (:class:`~repro.kg.nodes.Item`).

A frozen :class:`~repro.kg.store.AliCoCoStore` grows without unfreezing
through :class:`~repro.kg.generations.GenerationalStore`: immutable
copy-on-write delta segments layered over the base, published atomically
as numbered generations (see :mod:`repro.kg.generations`).
"""

from .generations import DeltaSegment, GenerationalStore, GenerationView, flatten
from .nodes import ClassNode, ECommerceConcept, Item, PrimitiveConcept
from .relations import Relation, RelationKind
from .store import AliCoCoStore
from .stats import StoreStats

__all__ = [
    "ClassNode", "PrimitiveConcept", "ECommerceConcept", "Item",
    "Relation", "RelationKind", "AliCoCoStore", "StoreStats",
    "GenerationalStore", "GenerationView", "DeltaSegment", "flatten",
]
