"""The AliCoCo graph store: four node layers plus typed relations.

Layers (Figure 1 of the paper):

- taxonomy classes (:class:`~repro.kg.nodes.ClassNode`),
- primitive concepts (:class:`~repro.kg.nodes.PrimitiveConcept`),
- e-commerce concepts (:class:`~repro.kg.nodes.ECommerceConcept`),
- items (:class:`~repro.kg.nodes.Item`).
"""

from .nodes import ClassNode, ECommerceConcept, Item, PrimitiveConcept
from .relations import Relation, RelationKind
from .store import AliCoCoStore
from .stats import StoreStats

__all__ = [
    "ClassNode", "PrimitiveConcept", "ECommerceConcept", "Item",
    "Relation", "RelationKind", "AliCoCoStore", "StoreStats",
]
