"""Integrity validation of a built net.

The paper stresses quality control ("we monitor the data quality
regularly"); this module is the structural half of that: referential
integrity, weight ranges, taxonomy acyclicity and isA acyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ids import CLASS_PREFIX, PRIMITIVE_PREFIX
from .relations import RelationKind
from .store import AliCoCoStore


@dataclass
class ValidationReport:
    """Problems found by :func:`validate_store` (empty = healthy)."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)


def validate_store(store: AliCoCoStore) -> ValidationReport:
    """Run all integrity checks over a store."""
    report = ValidationReport()
    _check_weights(store, report)
    _check_parent_links(store, report)
    _check_acyclic(store, report, RelationKind.SUBCLASS_OF, "taxonomy")
    _check_acyclic(store, report, RelationKind.ISA_PRIMITIVE, "primitive isA")
    _check_acyclic(store, report, RelationKind.ISA_ECOMMERCE, "e-commerce isA")
    _check_primitive_classes(store, report)
    return report


def _check_weights(store: AliCoCoStore, report: ValidationReport) -> None:
    for relation in store.relations():
        if not 0.0 <= relation.weight <= 1.0:
            report.add(f"relation {relation.kind.name} "
                       f"{relation.source}->{relation.target} has weight "
                       f"{relation.weight} outside [0, 1]")


def _check_parent_links(store: AliCoCoStore, report: ValidationReport) -> None:
    """Every class's parent_id must exist and be a class."""
    for node in store.nodes(CLASS_PREFIX):
        if node.parent_id is None:
            continue
        if node.parent_id not in store:
            report.add(f"class {node.id} has dangling parent {node.parent_id}")


def _check_acyclic(store: AliCoCoStore, report: ValidationReport,
                   kind: RelationKind, label: str) -> None:
    adjacency: dict[str, list[str]] = {}
    for relation in store.relations(kind):
        adjacency.setdefault(relation.source, []).append(relation.target)
    state: dict[str, int] = {}  # 0=visiting, 1=done

    def has_cycle(node: str) -> bool:
        stack = [(node, iter(adjacency.get(node, ())))]
        state[node] = 0
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if state.get(child) == 0:
                    return True
                if child not in state:
                    state[child] = 0
                    stack.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                state[current] = 1
                stack.pop()
        return False

    for start in list(adjacency):
        if start not in state and has_cycle(start):
            report.add(f"cycle detected in {label} relations at {start}")
            return


def _check_primitive_classes(store: AliCoCoStore,
                             report: ValidationReport) -> None:
    """Every primitive concept's class must exist, be a class node, and
    agree on the domain."""
    for node in store.nodes(PRIMITIVE_PREFIX):
        if node.class_id not in store:
            report.add(f"primitive {node.id} has dangling class {node.class_id}")
            continue
        class_node = store.get(node.class_id)
        if class_node.domain != node.domain:
            report.add(f"primitive {node.id} domain {node.domain!r} does not "
                       f"match class domain {class_node.domain!r}")
