"""High-level graph queries over an :class:`AliCoCoStore`.

Every function here touches only the store's *read* API (``get`` /
``targets`` / ``sources`` / ``in_relations`` / ``find_by_name``), so all
of them equally accept a :class:`~repro.kg.generations.GenerationView`
or :class:`~repro.kg.generations.GenerationalStore` — the serving tier
relies on this to answer graph queries against a pinned generation.
The ``AliCoCoStore`` annotations document the canonical shape, not an
isinstance requirement.
"""

from __future__ import annotations

from collections import deque

from ..errors import TaxonomyError
from .ids import ECOMMERCE_PREFIX, PRIMITIVE_PREFIX
from .nodes import ClassNode, ECommerceConcept, Item, PrimitiveConcept
from .relations import RelationKind
from .store import AliCoCoStore


def class_path(store: AliCoCoStore, class_id: str) -> list[ClassNode]:
    """Root-to-leaf taxonomy path of a class (e.g. Category->Clothing->Dress).

    Raises:
        TaxonomyError: On a parent cycle.
    """
    path: list[ClassNode] = []
    seen: set[str] = set()
    current: str | None = class_id
    while current is not None:
        if current in seen:
            raise TaxonomyError(f"cycle in taxonomy at {current!r}")
        seen.add(current)
        node = store.get(current)
        path.append(node)
        current = node.parent_id
    return list(reversed(path))


def hypernyms(store: AliCoCoStore, primitive_id: str,
              transitive: bool = False) -> list[PrimitiveConcept]:
    """Hypernym primitive concepts of a primitive concept.

    Args:
        transitive: If True, walk isA edges to closure (breadth-first,
            duplicates removed).
    """
    direct = store.targets(primitive_id, RelationKind.ISA_PRIMITIVE)
    if not transitive:
        return direct
    closure: list[PrimitiveConcept] = []
    seen = {primitive_id}
    frontier = deque(direct)
    while frontier:
        node = frontier.popleft()
        if node.id in seen:
            continue
        seen.add(node.id)
        closure.append(node)
        frontier.extend(store.targets(node.id, RelationKind.ISA_PRIMITIVE))
    return closure


def hyponyms(store: AliCoCoStore, primitive_id: str) -> list[PrimitiveConcept]:
    """Direct hyponyms (incoming isA edges) of a primitive concept."""
    return store.sources(primitive_id, RelationKind.ISA_PRIMITIVE)


def is_a(store: AliCoCoStore, hyponym_id: str, hypernym_id: str) -> bool:
    """Whether ``hyponym_id`` isA ``hypernym_id`` (transitively)."""
    return any(node.id == hypernym_id
               for node in hypernyms(store, hyponym_id, transitive=True))


def interpretation(store: AliCoCoStore,
                   ecommerce_id: str) -> list[PrimitiveConcept]:
    """Primitive concepts interpreting an e-commerce concept (Section 5.3)."""
    return store.targets(ecommerce_id, RelationKind.INTERPRETED_BY)


def concepts_interpreted_by(store: AliCoCoStore,
                            primitive_id: str) -> list[ECommerceConcept]:
    """E-commerce concepts whose interpretation includes a primitive."""
    return store.sources(primitive_id, RelationKind.INTERPRETED_BY)


def items_for_concept(store: AliCoCoStore, ecommerce_id: str,
                      top_k: int | None = None) -> list[Item]:
    """Items associated with an e-commerce concept, best weight first."""
    relations = store.in_relations(ecommerce_id, RelationKind.ITEM_ECOMMERCE)
    relations.sort(key=lambda r: -r.weight)
    if top_k is not None:
        relations = relations[:top_k]
    return [store.get(r.source) for r in relations]


def concepts_for_item(store: AliCoCoStore, item_id: str) -> list[ECommerceConcept]:
    """E-commerce concepts an item participates in."""
    return store.targets(item_id, RelationKind.ITEM_ECOMMERCE)


def primitives_for_item(store: AliCoCoStore, item_id: str) -> list[PrimitiveConcept]:
    """Primitive concepts (property-style tags) of an item."""
    return store.targets(item_id, RelationKind.ITEM_PRIMITIVE)


def find_primitive_senses(store: AliCoCoStore, name: str) -> list[PrimitiveConcept]:
    """All primitive-concept senses sharing a surface form."""
    return [node for node in store.find_by_name(PRIMITIVE_PREFIX, name)]


def find_ecommerce(store: AliCoCoStore, text: str) -> list[ECommerceConcept]:
    """E-commerce concepts with exactly this text."""
    return [node for node in store.find_by_name(ECOMMERCE_PREFIX, text)]
