"""JSON-lines persistence for a full AliCoCo store, plus versioned snapshots.

Two formats live here:

- the original *record stream* (:func:`save_store` / :func:`load_store`):
  one JSON object per line, nodes then relations, no framing — kept
  byte-compatible with files written before snapshots existed;
- the *versioned snapshot* (:func:`save_snapshot` / :func:`load_snapshot`):
  the same record stream prefixed with a header line carrying a format
  version, node/relation counts and a build-config fingerprint, and
  suffixed with serialised query-index state (e.g. the fitted
  :class:`~repro.matching.bm25.BM25Index` over concept texts) and an
  optional *model bundle* — one record per trained model, built on
  :func:`repro.ml.serialize.module_state_record`, carrying exact float64
  weights plus an architecture fingerprint that is re-validated when the
  weights are loaded into a live module.  A serving process warm-starts
  graph, search indexes *and* models from the one artifact — see
  :mod:`repro.serving`.

The header makes failure loud instead of quiet: a snapshot produced by a
different format version, truncated mid-write (counts disagree), or built
under a different configuration is rejected with a :class:`DataError`
naming the offending line.  ``load_store`` stays liberal — it accepts both
formats and simply skips snapshot framing records.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import DataError
from ..utils.io import read_jsonl_bulk, write_jsonl
from .nodes import ClassNode, ECommerceConcept, Item, PrimitiveConcept
from .relations import Relation, RelationKind
from .store import AliCoCoStore

#: Version of the snapshot framing; bump when the header or record layout
#: changes incompatibly.  Loaders reject any other version.
SNAPSHOT_FORMAT = 1

_NODE_TYPES = {
    "class": ClassNode,
    "primitive": PrimitiveConcept,
    "ecommerce": ECommerceConcept,
    "item": Item,
}
_TYPE_NAMES = {cls: name for name, cls in _NODE_TYPES.items()}


@dataclass(frozen=True)
class SnapshotHeader:
    """The first line of a snapshot file.

    Attributes:
        format_version: Snapshot framing version (:data:`SNAPSHOT_FORMAT`).
        node_count: Nodes the snapshot must contain (validated on load).
        relation_count: Relations the snapshot must contain.
        config_fingerprint: Digest of the build configuration
            (:meth:`repro.config.RunScale.fingerprint`), or ``""``.
        index_names: Names of the serialised index states that follow the
            record stream.
        model_names: Names of the model-bundle records that follow the
            index states (empty for model-less snapshots — the field is
            optional on disk, so pre-bundle snapshots still load).
    """

    format_version: int
    node_count: int
    relation_count: int
    config_fingerprint: str = ""
    index_names: tuple[str, ...] = ()
    model_names: tuple[str, ...] = ()


@dataclass
class Snapshot:
    """Everything read back from one snapshot file."""

    header: SnapshotHeader
    store: AliCoCoStore
    index_states: dict[str, dict[str, Any]] = field(default_factory=dict)
    model_states: dict[str, dict[str, Any]] = field(default_factory=dict)


def _records(store: AliCoCoStore) -> Iterator[dict[str, Any]]:
    for node in store.nodes():
        record = {"record": "node", "type": _TYPE_NAMES[type(node)],
                  **asdict(node)}
        if isinstance(node, ECommerceConcept):
            record["tokens"] = list(node.tokens)
        yield record
    for relation in store.relations():
        yield {"record": "relation", "kind": relation.kind.name,
               "source": relation.source, "target": relation.target,
               "weight": relation.weight, "name": relation.name}


def save_store(store: AliCoCoStore, path: str | Path) -> int:
    """Write nodes then relations, one JSON object per line (atomic).

    The write streams to a temp file in the target directory and renames
    it over ``path`` in one step (:func:`repro.utils.io.write_jsonl`), so
    a crash mid-write never leaves a truncated net behind.

    Returns:
        Number of lines written.
    """
    return write_jsonl(path, _records(store))


def save_snapshot(store: AliCoCoStore, path: str | Path, *,
                  config_fingerprint: str = "",
                  index_states: Mapping[str, Mapping[str, Any]] | None = None,
                  model_states: Mapping[str, Mapping[str, Any]] | None = None,
                  ) -> int:
    """Write a versioned snapshot: header, records, indexes, then models.

    Args:
        store: The net to persist.
        config_fingerprint: Digest of the configuration the net was built
            under; loaders may verify it before serving.
        index_states: Name -> JSON-serialisable index state (e.g.
            ``BM25Index.to_state()``, or any
            :meth:`repro.retrieval.BaseRetriever.to_state` — dense ANN
            indexes ride the same generic slot), rehydrated on warm start
            instead of re-fitted.
        model_states: Name -> model-state record
            (:func:`repro.ml.serialize.module_state_record`): trained
            weights + architecture fingerprint, restored on warm start
            instead of re-trained.

    Returns:
        Number of lines written (header + records + indexes + models).
    """
    index_states = dict(index_states or {})
    model_states = dict(model_states or {})

    def _lines() -> Iterator[dict[str, Any]]:
        yield {"record": "header", "format": SNAPSHOT_FORMAT,
               "nodes": len(store),
               "relations": store.stats().relations_total,
               "config": config_fingerprint,
               "indexes": list(index_states),
               "models": list(model_states)}
        yield from _records(store)
        for name, state in index_states.items():
            yield {"record": "index", "name": name, "state": dict(state)}
        for name, state in model_states.items():
            yield {"record": "model", "name": name, "state": dict(state)}

    return write_jsonl(path, _lines())


def _parse_header(line_number: int, record: dict[str, Any]) -> SnapshotHeader:
    try:
        header = SnapshotHeader(
            format_version=int(record["format"]),
            node_count=int(record["nodes"]),
            relation_count=int(record["relations"]),
            config_fingerprint=str(record.get("config", "")),
            index_names=tuple(record.get("indexes", ())),
            model_names=tuple(record.get("models", ())))
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(
            f"line {line_number}: corrupted snapshot header "
            f"({error!r})") from error
    if header.format_version != SNAPSHOT_FORMAT:
        raise DataError(
            f"line {line_number}: snapshot format "
            f"{header.format_version} unsupported "
            f"(this build reads format {SNAPSHOT_FORMAT})")
    return header


def _load(path: str | Path,
          require_header: bool) -> tuple[SnapshotHeader | None, Snapshot]:
    store = AliCoCoStore()
    header: SnapshotHeader | None = None
    index_states: dict[str, dict[str, Any]] = {}
    model_states: dict[str, dict[str, Any]] = {}
    # With a verified header the relations were schema-checked when they
    # first entered a store, so they are buffered and bulk-ingested via
    # the trusted fast path; headerless streams replay through the fully
    # validating add_relation.
    deferred: list[Relation] = []
    first = True
    for line_number, record in read_jsonl_bulk(path):
        kind = record.pop("record", None)
        if kind == "header":
            if not first:
                raise DataError(
                    f"line {line_number}: snapshot header must be the "
                    "first record")
            header = _parse_header(line_number, record)
        elif kind == "node":
            type_name = record.pop("type", None)
            node_cls = _NODE_TYPES.get(type_name)
            if node_cls is None:
                raise DataError(
                    f"line {line_number}: unknown node type {type_name!r}")
            if node_cls is ECommerceConcept:
                record["tokens"] = tuple(record["tokens"])
            try:
                store.add_node(node_cls(**record))
            except TypeError as error:
                raise DataError(
                    f"line {line_number}: bad node record ({error})") from error
        elif kind == "relation":
            try:
                relation_kind = RelationKind[record["kind"]]
            except KeyError:
                raise DataError(f"line {line_number}: unknown relation kind "
                                f"{record.get('kind')!r}") from None
            relation = Relation(
                kind=relation_kind,
                source=record["source"], target=record["target"],
                weight=record.get("weight", 1.0),
                name=record.get("name", ""))
            if header is not None:
                deferred.append(relation)
            else:
                store.add_relation(relation)
        elif kind == "index":
            try:
                index_states[str(record["name"])] = dict(record["state"])
            except (KeyError, TypeError) as error:
                raise DataError(f"line {line_number}: bad index record "
                                f"({error!r})") from error
        elif kind == "model":
            try:
                model_states[str(record["name"])] = dict(record["state"])
            except (KeyError, TypeError) as error:
                raise DataError(f"line {line_number}: bad model record "
                                f"({error!r})") from error
        else:
            raise DataError(f"line {line_number}: unknown record {kind!r}")
        if first:
            first = False
            if require_header and header is None:
                raise DataError(
                    "line 1: not a snapshot (missing header record); "
                    "use load_store for headerless nets")
    if require_header and header is None:
        raise DataError("line 1: not a snapshot (missing header record)")
    if deferred:
        store.add_relations_trusted(deferred)
    if header is not None:
        relation_count = store.stats().relations_total
        if (len(store), relation_count) != (header.node_count,
                                            header.relation_count):
            raise DataError(
                f"line 1: snapshot is incomplete — header promises "
                f"{header.node_count} nodes / {header.relation_count} "
                f"relations but the file holds {len(store)} / "
                f"{relation_count}")
    placeholder = header or SnapshotHeader(SNAPSHOT_FORMAT, len(store),
                                           store.stats().relations_total)
    return header, Snapshot(placeholder, store, index_states, model_states)


def load_store(path: str | Path) -> AliCoCoStore:
    """Rebuild a store saved by :func:`save_store` or :func:`save_snapshot`.

    Snapshot framing (header and index records), when present, is
    validated and skipped; the bare record stream loads as before.

    Raises:
        DataError: On malformed records (with line numbers).
    """
    return _load(path, require_header=False)[1].store


def load_snapshot(path: str | Path) -> Snapshot:
    """Read a versioned snapshot written by :func:`save_snapshot`.

    Returns:
        The header, the rebuilt store, and any serialised index states.

    Raises:
        DataError: If the header is missing, corrupted, from another
            format version, or disagrees with the file's contents — and
            on any malformed record, with line numbers throughout.
    """
    header, snapshot = _load(path, require_header=True)
    assert header is not None
    return snapshot
