"""JSON-lines persistence for a full AliCoCo store, plus versioned snapshots.

Two formats live here:

- the original *record stream* (:func:`save_store` / :func:`load_store`):
  one JSON object per line, nodes then relations, no framing — kept
  byte-compatible with files written before snapshots existed;
- the *versioned snapshot* (:func:`save_snapshot` / :func:`load_snapshot`):
  the same record stream prefixed with a header line carrying a format
  version, node/relation counts and a build-config fingerprint, and
  suffixed with serialised query-index state (e.g. the fitted
  :class:`~repro.matching.bm25.BM25Index` over concept texts) and an
  optional *model bundle* — one record per trained model, built on
  :func:`repro.ml.serialize.module_state_record`, carrying exact float64
  weights plus an architecture fingerprint that is re-validated when the
  weights are loaded into a live module.  A serving process warm-starts
  graph, search indexes *and* models from the one artifact — see
  :mod:`repro.serving`.

The header makes failure loud instead of quiet: a snapshot produced by a
different format version, truncated mid-write (counts disagree), or built
under a different configuration is rejected with a :class:`DataError`
naming the offending line.  ``load_store`` stays liberal — it accepts both
formats and simply skips snapshot framing records.

Generational nets (:mod:`repro.kg.generations`) persist through the same
snapshot framing: :func:`save_generations` writes the frozen base as the
ordinary record stream plus one ``delta`` record per published segment
(its nodes and relations, tagged with the generation id they were
published under), and :func:`load_generations` replays them into a
:class:`~repro.kg.generations.GenerationalStore` whose published view —
generation numbering included — answers identically to the saved one.
``delta`` is a *new record kind*, so a pre-generational loader rejects
such a snapshot loudly ("unknown record") instead of silently serving
the base without its deltas; ``load_store`` flattens base + deltas into
one plain store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import ConfigError, DataError
from ..utils.io import read_jsonl_bulk, write_jsonl
from .generations import GenerationalStore
from .nodes import ClassNode, ECommerceConcept, Item, Node, PrimitiveConcept
from .relations import Relation, RelationKind
from .store import AliCoCoStore

#: Version of the snapshot framing; bump when the header or record layout
#: changes incompatibly.  Loaders reject any other version.
SNAPSHOT_FORMAT = 1

_NODE_TYPES = {
    "class": ClassNode,
    "primitive": PrimitiveConcept,
    "ecommerce": ECommerceConcept,
    "item": Item,
}
_TYPE_NAMES = {cls: name for name, cls in _NODE_TYPES.items()}


@dataclass(frozen=True)
class SnapshotHeader:
    """The first line of a snapshot file.

    Attributes:
        format_version: Snapshot framing version (:data:`SNAPSHOT_FORMAT`).
        node_count: Nodes the snapshot must contain (validated on load).
        relation_count: Relations the snapshot must contain.
        config_fingerprint: Digest of the build configuration
            (:meth:`repro.config.RunScale.fingerprint`), or ``""``.
        index_names: Names of the serialised index states that follow the
            record stream.
        model_names: Names of the model-bundle records that follow the
            index states (empty for model-less snapshots — the field is
            optional on disk, so pre-bundle snapshots still load).
        generation_count: Number of ``delta`` records the snapshot
            carries (0 for non-generational snapshots; optional on disk,
            so older snapshots still load).  Node/relation counts cover
            base *and* deltas, so truncation stays loud.
        base_generation: Generation id the base records were compacted
            at (0 for uncompacted stores; optional on disk).  Delta
            records, if any, continue the numbering from here.
    """

    format_version: int
    node_count: int
    relation_count: int
    config_fingerprint: str = ""
    index_names: tuple[str, ...] = ()
    model_names: tuple[str, ...] = ()
    generation_count: int = 0
    base_generation: int = 0


@dataclass
class Snapshot:
    """Everything read back from one snapshot file.

    ``deltas`` holds one ``(generation_id, nodes, relations)`` triple per
    persisted delta segment, in publish order — empty for ordinary
    snapshots.  ``store`` is always the *base* store only; use
    :func:`generational_store_from_snapshot` (or :func:`load_store`,
    which flattens) to see base + deltas together.
    """

    header: SnapshotHeader
    store: AliCoCoStore
    index_states: dict[str, dict[str, Any]] = field(default_factory=dict)
    model_states: dict[str, dict[str, Any]] = field(default_factory=dict)
    deltas: list[tuple[int, list[Node], list[Relation]]] = field(
        default_factory=list)


def _node_record(node: Node) -> dict[str, Any]:
    record = {"type": _TYPE_NAMES[type(node)], **asdict(node)}
    if isinstance(node, ECommerceConcept):
        record["tokens"] = list(node.tokens)
    return record


def _relation_record(relation: Relation) -> dict[str, Any]:
    return {"kind": relation.kind.name,
            "source": relation.source, "target": relation.target,
            "weight": relation.weight, "name": relation.name}


def _parse_node(line_number: int, record: dict[str, Any]) -> Node:
    type_name = record.pop("type", None)
    node_cls = _NODE_TYPES.get(type_name)
    if node_cls is None:
        raise DataError(
            f"line {line_number}: unknown node type {type_name!r}")
    if node_cls is ECommerceConcept:
        record["tokens"] = tuple(record["tokens"])
    try:
        return node_cls(**record)
    except TypeError as error:
        raise DataError(
            f"line {line_number}: bad node record ({error})") from error


def _parse_relation(line_number: int, record: dict[str, Any]) -> Relation:
    try:
        relation_kind = RelationKind[record["kind"]]
    except KeyError:
        raise DataError(f"line {line_number}: unknown relation kind "
                        f"{record.get('kind')!r}") from None
    return Relation(
        kind=relation_kind,
        source=record["source"], target=record["target"],
        weight=record.get("weight", 1.0),
        name=record.get("name", ""))


def _records(store: AliCoCoStore) -> Iterator[dict[str, Any]]:
    for node in store.nodes():
        yield {"record": "node", **_node_record(node)}
    for relation in store.relations():
        yield {"record": "relation", **_relation_record(relation)}


def save_store(store: AliCoCoStore, path: str | Path) -> int:
    """Write nodes then relations, one JSON object per line (atomic).

    The write streams to a temp file in the target directory and renames
    it over ``path`` in one step (:func:`repro.utils.io.write_jsonl`), so
    a crash mid-write never leaves a truncated net behind.

    Returns:
        Number of lines written.
    """
    return write_jsonl(path, _records(store))


def save_snapshot(store: AliCoCoStore, path: str | Path, *,
                  config_fingerprint: str = "",
                  index_states: Mapping[str, Mapping[str, Any]] | None = None,
                  model_states: Mapping[str, Mapping[str, Any]] | None = None,
                  ) -> int:
    """Write a versioned snapshot: header, records, indexes, then models.

    Args:
        store: The net to persist.
        config_fingerprint: Digest of the configuration the net was built
            under; loaders may verify it before serving.
        index_states: Name -> JSON-serialisable index state (e.g.
            ``BM25Index.to_state()``, or any
            :meth:`repro.retrieval.BaseRetriever.to_state` — dense ANN
            indexes ride the same generic slot), rehydrated on warm start
            instead of re-fitted.
        model_states: Name -> model-state record
            (:func:`repro.ml.serialize.module_state_record`): trained
            weights + architecture fingerprint, restored on warm start
            instead of re-trained.

    Returns:
        Number of lines written (header + records + indexes + models).
    """
    index_states = dict(index_states or {})
    model_states = dict(model_states or {})

    def _lines() -> Iterator[dict[str, Any]]:
        yield {"record": "header", "format": SNAPSHOT_FORMAT,
               "nodes": len(store),
               "relations": store.stats().relations_total,
               "config": config_fingerprint,
               "indexes": list(index_states),
               "models": list(model_states)}
        yield from _records(store)
        for name, state in index_states.items():
            yield {"record": "index", "name": name, "state": dict(state)}
        for name, state in model_states.items():
            yield {"record": "model", "name": name, "state": dict(state)}

    return write_jsonl(path, _lines())


def _parse_header(line_number: int, record: dict[str, Any]) -> SnapshotHeader:
    try:
        header = SnapshotHeader(
            format_version=int(record["format"]),
            node_count=int(record["nodes"]),
            relation_count=int(record["relations"]),
            config_fingerprint=str(record.get("config", "")),
            index_names=tuple(record.get("indexes", ())),
            model_names=tuple(record.get("models", ())),
            generation_count=int(record.get("generations", 0)),
            base_generation=int(record.get("base_generation", 0)))
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(
            f"line {line_number}: corrupted snapshot header "
            f"({error!r})") from error
    if header.format_version != SNAPSHOT_FORMAT:
        raise DataError(
            f"line {line_number}: snapshot format "
            f"{header.format_version} unsupported "
            f"(this build reads format {SNAPSHOT_FORMAT})")
    return header


def _load(path: str | Path,
          require_header: bool) -> tuple[SnapshotHeader | None, Snapshot]:
    store = AliCoCoStore()
    header: SnapshotHeader | None = None
    index_states: dict[str, dict[str, Any]] = {}
    model_states: dict[str, dict[str, Any]] = {}
    deltas: list[tuple[int, list[Node], list[Relation]]] = []
    # With a verified header the relations were schema-checked when they
    # first entered a store, so they are buffered and bulk-ingested via
    # the trusted fast path; headerless streams replay through the fully
    # validating add_relation.
    deferred: list[Relation] = []
    first = True
    for line_number, record in read_jsonl_bulk(path):
        kind = record.pop("record", None)
        if kind == "header":
            if not first:
                raise DataError(
                    f"line {line_number}: snapshot header must be the "
                    "first record")
            header = _parse_header(line_number, record)
        elif kind == "node":
            store.add_node(_parse_node(line_number, record))
        elif kind == "relation":
            relation = _parse_relation(line_number, record)
            if header is not None:
                deferred.append(relation)
            else:
                store.add_relation(relation)
        elif kind == "delta":
            try:
                generation = int(record["generation"])
                node_records = list(record["nodes"])
                relation_records = list(record["relations"])
            except (KeyError, TypeError, ValueError) as error:
                raise DataError(f"line {line_number}: bad delta record "
                                f"({error!r})") from error
            deltas.append((
                generation,
                [_parse_node(line_number, dict(sub))
                 for sub in node_records],
                [_parse_relation(line_number, dict(sub))
                 for sub in relation_records]))
        elif kind == "index":
            try:
                index_states[str(record["name"])] = dict(record["state"])
            except (KeyError, TypeError) as error:
                raise DataError(f"line {line_number}: bad index record "
                                f"({error!r})") from error
        elif kind == "model":
            try:
                model_states[str(record["name"])] = dict(record["state"])
            except (KeyError, TypeError) as error:
                raise DataError(f"line {line_number}: bad model record "
                                f"({error!r})") from error
        else:
            raise DataError(f"line {line_number}: unknown record {kind!r}")
        if first:
            first = False
            if require_header and header is None:
                raise DataError(
                    "line 1: not a snapshot (missing header record); "
                    "use load_store for headerless nets")
    if require_header and header is None:
        raise DataError("line 1: not a snapshot (missing header record)")
    if deferred:
        store.add_relations_trusted(deferred)
    if header is not None:
        node_count = len(store) + sum(len(nodes) for _, nodes, _ in deltas)
        relation_count = store.stats().relations_total \
            + sum(len(relations) for _, _, relations in deltas)
        if (node_count, relation_count) != (header.node_count,
                                            header.relation_count):
            raise DataError(
                f"line 1: snapshot is incomplete — header promises "
                f"{header.node_count} nodes / {header.relation_count} "
                f"relations but the file holds {node_count} / "
                f"{relation_count}")
        if len(deltas) != header.generation_count:
            raise DataError(
                f"line 1: snapshot is incomplete — header promises "
                f"{header.generation_count} delta records but the file "
                f"holds {len(deltas)}")
    placeholder = header or SnapshotHeader(SNAPSHOT_FORMAT, len(store),
                                           store.stats().relations_total)
    return header, Snapshot(placeholder, store, index_states, model_states,
                            deltas)


def load_store(path: str | Path) -> AliCoCoStore:
    """Rebuild a store saved by :func:`save_store` or :func:`save_snapshot`.

    Snapshot framing (header and index records), when present, is
    validated and skipped; the bare record stream loads as before.  A
    generational snapshot (:func:`save_generations`) flattens: the
    returned store holds base *and* delta contents, generation structure
    discarded — use :func:`load_generations` to keep it.

    Raises:
        DataError: On malformed records (with line numbers).
    """
    snapshot = _load(path, require_header=False)[1]
    store = snapshot.store
    for _, nodes, relations in snapshot.deltas:
        for node in nodes:
            store.add_node(node)
        if relations:
            store.add_relations_trusted(relations)
    return store


def load_snapshot(path: str | Path) -> Snapshot:
    """Read a versioned snapshot written by :func:`save_snapshot`.

    Returns:
        The header, the rebuilt store, and any serialised index states.

    Raises:
        DataError: If the header is missing, corrupted, from another
            format version, or disagrees with the file's contents — and
            on any malformed record, with line numbers throughout.
    """
    header, snapshot = _load(path, require_header=True)
    assert header is not None
    return snapshot


def save_generations(store: GenerationalStore, path: str | Path, *,
                     config_fingerprint: str = "",
                     index_states: Mapping[str, Mapping[str, Any]] | None = None,
                     model_states: Mapping[str, Mapping[str, Any]] | None = None,
                     ) -> int:
    """Write a generational snapshot: base records plus delta records.

    The *published* view is pinned at entry (open/staged writes are not
    persisted — seal and swap first if they should be).  Header counts
    cover base **and** deltas, so a truncated file fails the count check;
    each delta record carries the generation id its segment was published
    under, letting :func:`load_generations` restore the exact generation
    numbering.

    Args:
        store: The generational net to persist.
        config_fingerprint / index_states / model_states: As in
            :func:`save_snapshot`.

    Returns:
        Number of lines written.

    Raises:
        ConfigError: If ``store`` is not a :class:`GenerationalStore`.
    """
    if not isinstance(store, GenerationalStore):
        raise ConfigError(
            f"save_generations needs a GenerationalStore, got "
            f"{type(store).__name__}; use save_snapshot for plain stores")
    # Everything is read off the pinned view — base, segments and the
    # base generation — so a concurrent compact() can never tear the
    # snapshot (a folded base paired with the old overlay's deltas
    # would duplicate content on load).
    view = store.current()
    base = view._base
    index_states = dict(index_states or {})
    model_states = dict(model_states or {})

    def _lines() -> Iterator[dict[str, Any]]:
        yield {"record": "header", "format": SNAPSHOT_FORMAT,
               "nodes": len(view),
               "relations": view.stats().relations_total,
               "config": config_fingerprint,
               "indexes": list(index_states),
               "models": list(model_states),
               "generations": len(view._segments),
               "base_generation": view.base_generation}
        yield from _records(base)
        for segment, generation in zip(view._segments,
                                       view.segment_generations):
            yield {"record": "delta", "generation": generation,
                   "nodes": [_node_record(node)
                             for node in segment.nodes.values()],
                   "relations": [_relation_record(relation)
                                 for relation in segment.relations]}
        for name, state in index_states.items():
            yield {"record": "index", "name": name, "state": dict(state)}
        for name, state in model_states.items():
            yield {"record": "model", "name": name, "state": dict(state)}

    return write_jsonl(path, _lines())


def generational_store_from_snapshot(snapshot: Snapshot) -> GenerationalStore:
    """Replay a loaded snapshot's deltas into a fresh generational store.

    Each delta record becomes one sealed segment again, and a ``swap()``
    fires at every generation boundary, so segment boundaries *and*
    generation numbering match the saved store exactly — warm-started
    caches keyed by generation id stay coherent.  A compacted snapshot
    (``base_generation > 0``) restores its numbering too: the bare base
    answers as the generation it was folded at, and any later deltas
    continue from there.

    Raises:
        DataError: If the delta records' generation ids are not
            consecutive from ``base_generation + 1`` as a live store
            produces (a live store never skips: empty segments are never
            sealed and swaps without staged content do not bump the id).
    """
    base_generation = snapshot.header.base_generation
    if base_generation < 0:
        raise DataError(
            f"snapshot header: base_generation {base_generation} "
            f"must be >= 0")
    store = GenerationalStore(
        snapshot.store, base_generation=base_generation)
    previous = base_generation
    for position, (generation, nodes, relations) in enumerate(
            snapshot.deltas):
        if (generation <= base_generation
                or generation not in (previous, previous + 1)):
            raise DataError(
                f"delta record {position}: generation {generation} "
                f"follows generation {previous} (ids must be "
                f"consecutive from {base_generation + 1})")
        if generation == previous + 1 and previous > base_generation:
            store.swap()
        for node in nodes:
            store.add_node(node)
        for relation in relations:
            store.add_relation(relation)
        if store.seal() is None:
            raise DataError(
                f"delta record {position}: segment is empty (a live "
                f"store never seals an empty segment)")
        previous = generation
    if previous > base_generation:
        store.swap()
    if store.generation_id != previous:
        raise DataError(
            f"replayed generation id {store.generation_id} does not "
            f"match the saved {previous}")
    return store


def load_generations(path: str | Path) -> GenerationalStore:
    """Read a generational snapshot back into a :class:`GenerationalStore`.

    Convenience over :func:`load_snapshot` +
    :func:`generational_store_from_snapshot`; index/model states ride the
    snapshot — use :func:`load_snapshot` directly when they are needed.

    Raises:
        DataError: As :func:`load_snapshot`, plus non-consecutive or
            empty delta records.
    """
    return generational_store_from_snapshot(load_snapshot(path))
