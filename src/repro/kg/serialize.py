"""JSON-lines persistence for a full AliCoCo store."""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator

from ..errors import DataError
from ..utils.io import read_jsonl, write_jsonl
from .nodes import ClassNode, ECommerceConcept, Item, PrimitiveConcept
from .relations import Relation, RelationKind
from .store import AliCoCoStore

_NODE_TYPES = {
    "class": ClassNode,
    "primitive": PrimitiveConcept,
    "ecommerce": ECommerceConcept,
    "item": Item,
}
_TYPE_NAMES = {cls: name for name, cls in _NODE_TYPES.items()}


def _records(store: AliCoCoStore) -> Iterator[dict[str, Any]]:
    for node in store.nodes():
        record = {"record": "node", "type": _TYPE_NAMES[type(node)],
                  **asdict(node)}
        if isinstance(node, ECommerceConcept):
            record["tokens"] = list(node.tokens)
        yield record
    for relation in store.relations():
        yield {"record": "relation", "kind": relation.kind.name,
               "source": relation.source, "target": relation.target,
               "weight": relation.weight, "name": relation.name}


def save_store(store: AliCoCoStore, path: str | Path) -> int:
    """Write nodes then relations, one JSON object per line (atomic).

    Returns:
        Number of lines written.
    """
    return write_jsonl(path, _records(store))


def load_store(path: str | Path) -> AliCoCoStore:
    """Rebuild a store saved by :func:`save_store`.

    Raises:
        DataError: On malformed records (with line numbers).
    """
    store = AliCoCoStore()
    for line_number, record in read_jsonl(path):
        kind = record.pop("record", None)
        if kind == "node":
            type_name = record.pop("type", None)
            node_cls = _NODE_TYPES.get(type_name)
            if node_cls is None:
                raise DataError(
                    f"line {line_number}: unknown node type {type_name!r}")
            if node_cls is ECommerceConcept:
                record["tokens"] = tuple(record["tokens"])
            try:
                store.add_node(node_cls(**record))
            except TypeError as error:
                raise DataError(
                    f"line {line_number}: bad node record ({error})") from error
        elif kind == "relation":
            try:
                relation_kind = RelationKind[record["kind"]]
            except KeyError:
                raise DataError(f"line {line_number}: unknown relation kind "
                                f"{record.get('kind')!r}") from None
            store.add_relation(Relation(
                kind=relation_kind,
                source=record["source"], target=record["target"],
                weight=record.get("weight", 1.0),
                name=record.get("name", "")))
        else:
            raise DataError(f"line {line_number}: unknown record {kind!r}")
    return store
