"""The in-memory AliCoCo graph store with typed validation and indexes."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..errors import (
    DuplicateNodeError, FrozenStoreError, NodeNotFoundError, RelationError,
)
from .ids import (
    CLASS_PREFIX, ECOMMERCE_PREFIX, IdAllocator, ITEM_PREFIX,
    PRIMITIVE_PREFIX, layer_of,
)
from .nodes import ClassNode, ECommerceConcept, Item, Node, PrimitiveConcept
from .relations import Relation, RelationKind
from .stats import StoreStats

_LAYER_TYPES = {
    CLASS_PREFIX: ClassNode,
    PRIMITIVE_PREFIX: PrimitiveConcept,
    ECOMMERCE_PREFIX: ECommerceConcept,
    ITEM_PREFIX: Item,
}


class AliCoCoStore:
    """Nodes + relations with per-layer name indexes and adjacency lists.

    All mutation goes through :meth:`add_node` / :meth:`add_relation`
    (or the typed ``create_*`` conveniences, which also allocate ids), so
    the indexes can never drift from the node table.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}
        self._ids = IdAllocator()
        # name index: layer prefix -> name -> list of node ids
        self._by_name: dict[str, dict[str, list[str]]] = {
            prefix: defaultdict(list) for prefix in _LAYER_TYPES}
        self._relations: list[Relation] = []
        self._out: dict[tuple[str, RelationKind], list[Relation]] = defaultdict(list)
        self._in: dict[tuple[str, RelationKind], list[Relation]] = defaultdict(list)
        self._relation_by_key: dict[tuple[RelationKind, str, str], Relation] = {}
        # Incrementally-maintained statistics; every mutation funnels
        # through add_node/add_relation so these can never drift.
        self._layer_counts: dict[str, int] = {p: 0 for p in _LAYER_TYPES}
        self._kind_counts: dict[RelationKind, int] = defaultdict(int)
        self._by_kind: dict[RelationKind, list[Relation]] = defaultdict(list)
        self._domain_class_ids: dict[str, list[str]] = defaultdict(list)
        self._domain_primitive_ids: dict[str, list[str]] = defaultdict(list)
        self._linked_item_ids: set[str] = set()
        self._frozen = False

    # -------------------------------------------------------------- freezing
    @property
    def frozen(self) -> bool:
        """Whether the store is frozen (read-only)."""
        return self._frozen

    def freeze(self) -> "AliCoCoStore":
        """Make the store read-only; any further mutation raises.

        Serving wraps a store whose query results may be cached — freezing
        guarantees cached answers can never go stale under the cache.
        Freezing is idempotent and irreversible (build a new store to
        mutate again); returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    # -------------------------------------------------------------- mutation
    def add_node(self, node: Node) -> Node:
        """Insert a pre-built node.

        Raises:
            FrozenStoreError: If the store has been frozen for serving.
            DuplicateNodeError: If the id is already present.
            RelationError: If the node type does not match its id prefix.
        """
        if self._frozen:
            raise FrozenStoreError(
                f"cannot add node {node.id!r}: store is frozen for serving")
        if node.id in self._nodes:
            raise DuplicateNodeError(f"node {node.id!r} already exists")
        layer = layer_of(node.id)
        if not isinstance(node, _LAYER_TYPES[layer]):
            raise RelationError(
                f"node {node.id!r} has prefix {layer!r} but type {type(node).__name__}")
        self._nodes[node.id] = node
        self._by_name[layer][self._name_of(node)].append(node.id)
        self._layer_counts[layer] += 1
        if isinstance(node, ClassNode):
            self._domain_class_ids[node.domain].append(node.id)
        elif isinstance(node, PrimitiveConcept):
            self._domain_primitive_ids[node.domain].append(node.id)
        return node

    @staticmethod
    def _name_of(node: Node) -> str:
        if isinstance(node, (ClassNode, PrimitiveConcept)):
            return node.name
        if isinstance(node, ECommerceConcept):
            return node.text
        return node.title

    def create_class(self, name: str, domain: str,
                     parent_id: str | None = None) -> ClassNode:
        """Allocate an id and insert a taxonomy class."""
        if parent_id is not None:
            self._require(parent_id, CLASS_PREFIX)
        node = ClassNode(self._ids.allocate(CLASS_PREFIX), name, domain, parent_id)
        self.add_node(node)
        if parent_id is not None:
            self.add_relation(Relation(RelationKind.SUBCLASS_OF, node.id, parent_id))
        return node

    def create_primitive(self, name: str, class_id: str) -> PrimitiveConcept:
        """Allocate an id and insert a primitive concept under ``class_id``."""
        class_node = self._require(class_id, CLASS_PREFIX)
        node = PrimitiveConcept(self._ids.allocate(PRIMITIVE_PREFIX), name,
                                class_id, class_node.domain)
        self.add_node(node)
        self.add_relation(Relation(RelationKind.INSTANCE_OF, node.id, class_id))
        return node

    def create_ecommerce(self, text: str, source: str = "mined") -> ECommerceConcept:
        """Allocate an id and insert an e-commerce concept."""
        tokens = tuple(text.split())
        node = ECommerceConcept(self._ids.allocate(ECOMMERCE_PREFIX), text,
                                tokens, source)
        return self.add_node(node)

    def create_item(self, title: str, shop: str = "shop_0",
                    properties: dict[str, str] | None = None) -> Item:
        """Allocate an id and insert an item."""
        node = Item(self._ids.allocate(ITEM_PREFIX), title, shop,
                    dict(properties or {}))
        return self.add_node(node)

    def add_relation(self, relation: Relation) -> Relation:
        """Insert a relation after validating endpoints.

        Duplicate (kind, source, target) triples are ignored and the
        existing relation list is left untouched; the *stored* relation is
        returned so callers always hold the edge that is actually in the
        net (the discarded duplicate may carry a different weight/name).

        Raises:
            FrozenStoreError: If the store has been frozen for serving.
            NodeNotFoundError: If either endpoint is missing.
            RelationError: If the endpoint layers do not match the kind.
        """
        if self._frozen:
            raise FrozenStoreError(
                f"cannot add {relation.kind.name} relation: "
                "store is frozen for serving")
        for node_id, expected in ((relation.source, relation.kind.source_layer),
                                  (relation.target, relation.kind.target_layer)):
            self._require(node_id, expected)
        key = (relation.kind, relation.source, relation.target)
        existing = self._relation_by_key.get(key)
        if existing is not None:
            return existing
        self._relation_by_key[key] = relation
        self._relations.append(relation)
        self._out[(relation.source, relation.kind)].append(relation)
        self._in[(relation.target, relation.kind)].append(relation)
        self._kind_counts[relation.kind] += 1
        self._by_kind[relation.kind].append(relation)
        if relation.kind in (RelationKind.ITEM_PRIMITIVE,
                             RelationKind.ITEM_ECOMMERCE):
            self._linked_item_ids.add(relation.source)
        return relation

    def add_relations_trusted(self, relations: Iterable[Relation]) -> int:
        """Bulk-insert relations known to be schema-valid and duplicate-free.

        The snapshot loader replays edges that were already validated when
        they first entered a store; re-validating endpoint layers and
        re-checking for duplicates per edge dominates warm-start time, so
        this path skips both.  Endpoint *existence* is still enforced (it
        is one dictionary lookup and catches truncated files).  All
        indexes and counters are maintained exactly as
        :meth:`add_relation` would.

        Returns:
            Number of relations inserted.

        Raises:
            FrozenStoreError: If the store has been frozen for serving.
            NodeNotFoundError: If an endpoint is missing.
        """
        if self._frozen:
            raise FrozenStoreError(
                "cannot bulk-add relations: store is frozen for serving")
        nodes = self._nodes
        count = 0
        for relation in relations:
            if relation.source not in nodes:
                raise NodeNotFoundError(
                    f"node {relation.source!r} does not exist")
            if relation.target not in nodes:
                raise NodeNotFoundError(
                    f"node {relation.target!r} does not exist")
            self._relation_by_key[
                (relation.kind, relation.source, relation.target)] = relation
            self._relations.append(relation)
            self._out[(relation.source, relation.kind)].append(relation)
            self._in[(relation.target, relation.kind)].append(relation)
            self._kind_counts[relation.kind] += 1
            self._by_kind[relation.kind].append(relation)
            if relation.kind in (RelationKind.ITEM_PRIMITIVE,
                                 RelationKind.ITEM_ECOMMERCE):
                self._linked_item_ids.add(relation.source)
            count += 1
        return count

    def _require(self, node_id: str, expected_layer: str) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"node {node_id!r} does not exist")
        if layer_of(node_id) != expected_layer:
            raise RelationError(
                f"node {node_id!r} is in layer {layer_of(node_id)!r}; "
                f"expected {expected_layer!r}")
        return node

    # ---------------------------------------------------------------- access
    def get(self, node_id: str) -> Node:
        """Node by id.

        Raises:
            NodeNotFoundError: If absent.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise NodeNotFoundError(f"node {node_id!r} does not exist")
        return node

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def find_by_name(self, layer: str, name: str) -> list[Node]:
        """All nodes in ``layer`` whose name/text/title equals ``name``."""
        return [self._nodes[i] for i in self._by_name[layer].get(name, [])]

    def nodes(self, layer: str | None = None) -> Iterator[Node]:
        """Iterate nodes, optionally restricted to one layer prefix."""
        for node_id, node in self._nodes.items():
            if layer is None or layer_of(node_id) == layer:
                yield node

    def relations(self, kind: RelationKind | None = None) -> Iterator[Relation]:
        """Iterate relations, optionally filtered by kind (per-kind lists
        are maintained incrementally, so filtering does not scan)."""
        source = self._relations if kind is None else self._by_kind.get(kind, [])
        yield from source

    def out_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        """Outgoing relations of ``node_id`` with the given kind."""
        return list(self._out.get((node_id, kind), []))

    def in_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        """Incoming relations of ``node_id`` with the given kind."""
        return list(self._in.get((node_id, kind), []))

    def targets(self, node_id: str, kind: RelationKind) -> list[Node]:
        """Target nodes of outgoing ``kind`` edges."""
        return [self._nodes[r.target] for r in self._out.get((node_id, kind), [])]

    def sources(self, node_id: str, kind: RelationKind) -> list[Node]:
        """Source nodes of incoming ``kind`` edges."""
        return [self._nodes[r.source] for r in self._in.get((node_id, kind), [])]

    # ------------------------------------------------------------ statistics
    def count_nodes(self, layer: str) -> int:
        """Nodes in a layer — O(1) from the maintained counter."""
        return self._layer_counts[layer]

    def count_relations(self, kind: RelationKind) -> int:
        """Relations of a kind — O(1) from the maintained counter."""
        return self._kind_counts.get(kind, 0)

    def stats(self) -> StoreStats:
        """Aggregate statistics in the shape of the paper's Table 2.

        Every figure is read off incrementally-maintained counters and
        indexes, so this is O(domains) rather than O(nodes + relations).
        """
        items = self.count_nodes(ITEM_PREFIX)
        return StoreStats(
            primitive_concepts=self.count_nodes(PRIMITIVE_PREFIX),
            ecommerce_concepts=self.count_nodes(ECOMMERCE_PREFIX),
            items=items,
            classes=self.count_nodes(CLASS_PREFIX),
            relations_total=len(self._relations),
            isa_primitive=self.count_relations(RelationKind.ISA_PRIMITIVE),
            isa_ecommerce=self.count_relations(RelationKind.ISA_ECOMMERCE),
            item_primitive=self.count_relations(RelationKind.ITEM_PRIMITIVE),
            item_ecommerce=self.count_relations(RelationKind.ITEM_ECOMMERCE),
            ecommerce_primitive=self.count_relations(RelationKind.INTERPRETED_BY),
            primitive_by_domain={
                domain: len(ids)
                for domain, ids in self._domain_primitive_ids.items()},
            linked_item_fraction=(
                len(self._linked_item_ids) / items) if items else 0.0,
        )

    # --------------------------------------------------------------- helpers
    def classes_in_domain(self, domain: str) -> list[ClassNode]:
        """All taxonomy classes belonging to a first-level domain (served
        from the per-domain index; no full-store scan)."""
        return [self._nodes[i] for i in self._domain_class_ids.get(domain, [])]

    def primitives_in_domain(self, domain: str) -> list[PrimitiveConcept]:
        """All primitive concepts belonging to a first-level domain (served
        from the per-domain index; no full-store scan)."""
        return [self._nodes[i]
                for i in self._domain_primitive_ids.get(domain, [])]
