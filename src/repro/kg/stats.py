"""Aggregate statistics of a built net, mirroring Table 2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StoreStats:
    """Counts in the shape of the paper's Table 2.

    The paper reports 2.8M primitive concepts, 5.3M e-commerce concepts,
    >3B items and >400B relations; the reproduction reports the same rows at
    synthetic-world scale.
    """

    primitive_concepts: int
    ecommerce_concepts: int
    items: int
    classes: int
    relations_total: int
    isa_primitive: int
    isa_ecommerce: int
    item_primitive: int
    item_ecommerce: int
    ecommerce_primitive: int
    primitive_by_domain: dict[str, int] = field(default_factory=dict)
    linked_item_fraction: float = 0.0

    @property
    def avg_primitive_per_item(self) -> float:
        """Average primitive concepts associated with each item."""
        return self.item_primitive / self.items if self.items else 0.0

    @property
    def avg_ecommerce_per_item(self) -> float:
        """Average e-commerce concepts associated with each item."""
        return self.item_ecommerce / self.items if self.items else 0.0

    @property
    def avg_items_per_ecommerce(self) -> float:
        """Average items associated with each e-commerce concept."""
        if not self.ecommerce_concepts:
            return 0.0
        return self.item_ecommerce / self.ecommerce_concepts

    def summary(self) -> str:
        """Human-readable, Table 2-shaped report."""
        lines = [
            "Overall",
            f"  # Primitive concepts        {self.primitive_concepts:>10}",
            f"  # E-commerce concepts       {self.ecommerce_concepts:>10}",
            f"  # Items                     {self.items:>10}",
            f"  # Taxonomy classes          {self.classes:>10}",
            f"  # Relations                 {self.relations_total:>10}",
            "Relations",
            f"  # IsA in primitive concepts {self.isa_primitive:>10}",
            f"  # IsA in e-commerce cpts    {self.isa_ecommerce:>10}",
            f"  # Item - Primitive cpts     {self.item_primitive:>10}",
            f"  # Item - E-commerce cpts    {self.item_ecommerce:>10}",
            f"  # E-commerce - Primitive    {self.ecommerce_primitive:>10}",
            "Coverage",
            f"  items linked                {self.linked_item_fraction:>9.1%}",
            f"  avg primitive cpts / item   {self.avg_primitive_per_item:>10.1f}",
            f"  avg e-commerce cpts / item  {self.avg_ecommerce_per_item:>10.1f}",
            f"  avg items / e-commerce cpt  {self.avg_items_per_ecommerce:>10.1f}",
            "Primitive concepts by domain",
        ]
        for domain in sorted(self.primitive_by_domain):
            lines.append(f"  # {domain:<25} {self.primitive_by_domain[domain]:>10}")
        return "\n".join(lines)
