"""networkx export and graph-level analysis of a built net."""

from __future__ import annotations

import networkx as nx

from .ids import layer_of
from .relations import RelationKind
from .store import AliCoCoStore


def to_networkx(store: AliCoCoStore,
                kinds: tuple[RelationKind, ...] | None = None) -> nx.MultiDiGraph:
    """Export the store as a multi-digraph.

    Nodes carry a ``layer`` attribute; edges carry ``kind``, ``weight``
    and ``name``.

    Args:
        store: The net.
        kinds: Optional restriction to some relation kinds.
    """
    graph = nx.MultiDiGraph()
    for node in store.nodes():
        graph.add_node(node.id, layer=layer_of(node.id))
    for relation in store.relations():
        if kinds is not None and relation.kind not in kinds:
            continue
        graph.add_edge(relation.source, relation.target,
                       kind=relation.kind.name, weight=relation.weight,
                       name=relation.name)
    return graph


def connectivity_summary(store: AliCoCoStore) -> dict[str, float]:
    """Graph-level statistics: size, density surrogate, reachability.

    ``item_to_concept_reach`` is the share of items from which at least
    one e-commerce concept is reachable — the paper's "98% of items are
    linked to AliCoCo" framed as graph reachability.
    """
    graph = to_networkx(store)
    undirected = graph.to_undirected()
    items = [n for n, data in graph.nodes(data=True) if data["layer"] == "item"]
    reachable = 0
    for item in items:
        for _, target, data in graph.out_edges(item, data=True):
            if data["kind"] in ("ITEM_ECOMMERCE", "ITEM_PRIMITIVE"):
                reachable += 1
                break
    components = nx.number_connected_components(undirected) if len(undirected) else 0
    return {
        "nodes": float(graph.number_of_nodes()),
        "edges": float(graph.number_of_edges()),
        "connected_components": float(components),
        "item_link_rate": reachable / len(items) if items else 0.0,
        "avg_out_degree": (graph.number_of_edges() / graph.number_of_nodes()
                           if graph.number_of_nodes() else 0.0),
    }
