"""Typed node-id allocation.

Every node gets a unique string id with a layer prefix (``cls_``, ``pc_``,
``ec_``, ``item_``).  The paper stresses that several primitive concepts may
share a *name* while having different ids (sense disambiguation); ids here
are therefore allocated per node, never derived from names.
"""

from __future__ import annotations

from itertools import count

CLASS_PREFIX = "cls"
PRIMITIVE_PREFIX = "pc"
ECOMMERCE_PREFIX = "ec"
ITEM_PREFIX = "item"

_PREFIXES = (CLASS_PREFIX, PRIMITIVE_PREFIX, ECOMMERCE_PREFIX, ITEM_PREFIX)


class IdAllocator:
    """Hands out sequential ids per layer prefix."""

    def __init__(self) -> None:
        self._counters = {prefix: count() for prefix in _PREFIXES}

    def allocate(self, prefix: str) -> str:
        """Next id for ``prefix``.

        Raises:
            KeyError: On an unknown prefix.
        """
        return f"{prefix}_{next(self._counters[prefix])}"


def layer_of(node_id: str) -> str:
    """The layer prefix of a node id.

    Raises:
        ValueError: If the id does not carry a known prefix.
    """
    prefix = node_id.split("_", 1)[0]
    if prefix not in _PREFIXES:
        raise ValueError(f"id {node_id!r} has no known layer prefix")
    return prefix
