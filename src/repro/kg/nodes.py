"""Node types for the four layers of AliCoCo."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClassNode:
    """A taxonomy class (Section 3).

    Attributes:
        id: ``cls_*`` node id.
        name: Class name, e.g. ``Dress``.
        domain: First-level class ("domain") it belongs to, e.g. ``Category``.
        parent_id: Parent class id; ``None`` only for first-level domains.
    """

    id: str
    name: str
    domain: str
    parent_id: str | None = None


@dataclass(frozen=True)
class PrimitiveConcept:
    """A primitive concept (Section 4): a short vocabulary unit with a class.

    Several primitive concepts may share ``name`` (e.g. *village* as a
    Location and *village* as a Style) — they are distinct nodes with
    distinct ids, which is how AliCoCo disambiguates raw text.

    Attributes:
        id: ``pc_*`` node id.
        name: Surface form (single- or multi-word phrase).
        class_id: Finest taxonomy class this concept instantiates.
        domain: The first-level domain of that class (denormalised for
            cheap filtering).
    """

    id: str
    name: str
    class_id: str
    domain: str


@dataclass(frozen=True)
class ECommerceConcept:
    """An e-commerce concept (Section 5): a shopping-scenario phrase.

    Attributes:
        id: ``ec_*`` node id.
        text: The phrase, e.g. ``outdoor barbecue``.
        tokens: Tokenised form of ``text``.
        source: How it was produced: ``mined`` (from corpus) or
            ``generated`` (from primitive-concept patterns).
    """

    id: str
    text: str
    tokens: tuple[str, ...]
    source: str = "mined"


@dataclass(frozen=True)
class Item:
    """An item (Section 6): the smallest selling unit.

    Attributes:
        id: ``item_*`` node id.
        title: The merchant-written title text.
        shop: Shop identifier (two identical products in two shops are
            distinct items, per the paper's footnote 3).
        properties: CPV-style property map, e.g. ``{"Color": "red"}``.
    """

    id: str
    title: str
    shop: str = "shop_0"
    properties: dict[str, str] = field(default_factory=dict)


Node = ClassNode | PrimitiveConcept | ECommerceConcept | Item
