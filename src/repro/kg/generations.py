"""Copy-on-write store generations: serve the net while it evolves.

The serving tier (:mod:`repro.serving`) freezes its store so cached
answers can never go stale — but the paper's production net *grows*
while serving traffic (newly mined concepts and item associations stream
in; AliCG calls this an "evolvable" conceptual graph).  This module
reconciles the two with a classic copy-on-write generation scheme:

- a frozen **base** :class:`~repro.kg.store.AliCoCoStore` holds the
  build output and is never touched again;
- writes go to an **open** :class:`DeltaSegment` — a small add-only
  mini-store with the same indexes as the base;
- :meth:`GenerationalStore.seal` closes the open segment (it becomes
  immutable) and :meth:`GenerationalStore.swap` atomically publishes all
  sealed segments as the next **generation** — a new immutable
  :class:`GenerationView` whose reads see base + segments through the
  existing store/query API.

The concurrency contract mirrors the serving tier's: a published
:class:`GenerationView` is deeply immutable, so readers touch it without
locks; ``swap()`` installs the next view with one attribute assignment
(atomic under the GIL), so a reader sees either the old generation or
the new one — never a mix.  Writers and ``seal``/``swap`` serialize on
one internal lock.

Semantics are **add-only**: nodes and relations can be added in a delta
but never removed or rewritten (node ids are never reused), matching the
store's own contract.  That is what makes overlay reads cheap and
deterministic: every read is the base result followed by each segment's
result in publish order, which is exactly the insertion order a
monolithic store would have produced — weight-tie ordering included.

Generation 0 (no published segments) delegates every read straight to
the base store, so a service over a zero-delta ``GenerationalStore`` is
bit-identical to one over the frozen store itself.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Iterable, Iterator

from ..errors import (
    ConfigError,
    DuplicateNodeError,
    FrozenStoreError,
    NodeNotFoundError,
    RelationError,
)
from .ids import (
    CLASS_PREFIX,
    ECOMMERCE_PREFIX,
    ITEM_PREFIX,
    PRIMITIVE_PREFIX,
    layer_of,
)
from .nodes import ClassNode, ECommerceConcept, Item, Node, PrimitiveConcept
from .relations import Relation, RelationKind
from .stats import StoreStats
from .store import AliCoCoStore, _LAYER_TYPES


class DeltaSegment:
    """One add-only batch of nodes and relations over some prior state.

    A segment maintains the same incremental indexes as
    :class:`~repro.kg.store.AliCoCoStore` (name index, adjacency lists,
    per-kind lists, counters), so :class:`GenerationView` reads can
    concatenate per-segment results without scanning.  Validation lives
    in :class:`GenerationalStore`, which checks writes against the whole
    pending state (base + sealed + open) before routing them here.

    Once sealed, any further mutation raises :class:`FrozenStoreError` —
    sealed segments are shared by published views and must never change.
    """

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.relations: list[Relation] = []
        self.by_name: dict[str, dict[str, list[str]]] = {
            prefix: defaultdict(list) for prefix in _LAYER_TYPES
        }
        self.out: dict[tuple[str, RelationKind], list[Relation]] = defaultdict(list)
        self.inc: dict[tuple[str, RelationKind], list[Relation]] = defaultdict(list)
        self.relation_by_key: dict[tuple[RelationKind, str, str], Relation] = {}
        self.layer_counts: dict[str, int] = {p: 0 for p in _LAYER_TYPES}
        self.kind_counts: dict[RelationKind, int] = defaultdict(int)
        self.by_kind: dict[RelationKind, list[Relation]] = defaultdict(list)
        self.domain_class_ids: dict[str, list[str]] = defaultdict(list)
        self.domain_primitive_ids: dict[str, list[str]] = defaultdict(list)
        self.linked_item_ids: set[str] = set()
        self.sealed = False

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def empty(self) -> bool:
        return not self.nodes and not self.relations

    def seal(self) -> "DeltaSegment":
        self.sealed = True
        return self

    def _add_node(self, node: Node) -> None:
        if self.sealed:
            raise FrozenStoreError(
                f"cannot add node {node.id!r}: delta segment is sealed"
            )
        layer = layer_of(node.id)
        self.nodes[node.id] = node
        self.by_name[layer][AliCoCoStore._name_of(node)].append(node.id)
        self.layer_counts[layer] += 1
        if isinstance(node, ClassNode):
            self.domain_class_ids[node.domain].append(node.id)
        elif isinstance(node, PrimitiveConcept):
            self.domain_primitive_ids[node.domain].append(node.id)

    def _add_relation(self, relation: Relation) -> None:
        if self.sealed:
            raise FrozenStoreError(
                f"cannot add {relation.kind.name} relation: delta segment is sealed"
            )
        key = (relation.kind, relation.source, relation.target)
        self.relation_by_key[key] = relation
        self.relations.append(relation)
        self.out[(relation.source, relation.kind)].append(relation)
        self.inc[(relation.target, relation.kind)].append(relation)
        self.kind_counts[relation.kind] += 1
        self.by_kind[relation.kind].append(relation)
        if relation.kind in (
            RelationKind.ITEM_PRIMITIVE,
            RelationKind.ITEM_ECOMMERCE,
        ):
            self.linked_item_ids.add(relation.source)


class GenerationView:
    """An immutable read view over base + published delta segments.

    Implements the read half of the :class:`AliCoCoStore` API (``get``,
    ``nodes``, ``relations``, adjacency, counters, ``stats``, domain
    helpers), so :mod:`repro.kg.query` functions and the serving tier
    work on it unchanged.  Every method answers base-first, then each
    segment in publish order — the insertion order a monolithic store
    would have.

    A view is deeply immutable (the base is frozen, the segments are
    sealed), so reads are lock-free and results can be cached keyed by
    :attr:`generation_id`.  With zero segments every method delegates
    straight to the base store: generation 0 is bit-identical to the
    frozen path.
    """

    __slots__ = (
        "_base",
        "_segments",
        "generation_id",
        "segment_generations",
        "base_generation",
    )

    def __init__(
        self,
        base: AliCoCoStore,
        segments: tuple[DeltaSegment, ...] = (),
        generation_id: int = 0,
        segment_generations: tuple[int, ...] = (),
        base_generation: int = 0,
    ) -> None:
        self._base = base
        self._segments = segments
        #: Monotonic publish counter; 0 is the bare base store.
        self.generation_id = generation_id
        #: Generation id each segment was published under (one swap may
        #: publish several sealed segments); snapshots persist this so a
        #: warm start restores the exact generation numbering.
        self.segment_generations = segment_generations or tuple(
            range(base_generation + 1, base_generation + len(segments) + 1)
        )
        #: Generation id folded into ``_base`` (0 until a compaction).
        #: Pinned on the view so snapshotting a view is tear-free even
        #: if the owning store compacts concurrently.
        self.base_generation = base_generation

    # ------------------------------------------------------------- freezing
    @property
    def frozen(self) -> bool:
        """Views are always read-only."""
        return True

    def freeze(self) -> "GenerationView":
        """No-op for API compatibility with :class:`AliCoCoStore`."""
        return self

    # --------------------------------------------------------------- access
    def get(self, node_id: str) -> Node:
        """Node by id, searching base then segments.

        Raises:
            NodeNotFoundError: If absent from every layer.
        """
        node = self._base._nodes.get(node_id)
        if node is not None:
            return node
        for segment in self._segments:
            node = segment.nodes.get(node_id)
            if node is not None:
                return node
        raise NodeNotFoundError(f"node {node_id!r} does not exist")

    def __contains__(self, node_id: str) -> bool:
        if node_id in self._base._nodes:
            return True
        return any(node_id in segment.nodes for segment in self._segments)

    def __len__(self) -> int:
        return len(self._base) + sum(len(s) for s in self._segments)

    def find_by_name(self, layer: str, name: str) -> list[Node]:
        """All nodes in ``layer`` whose name/text/title equals ``name``."""
        found = self._base.find_by_name(layer, name)
        for segment in self._segments:
            found.extend(
                segment.nodes[i] for i in segment.by_name[layer].get(name, [])
            )
        return found

    def nodes(self, layer: str | None = None) -> Iterator[Node]:
        """Iterate nodes in insertion order, base first."""
        yield from self._base.nodes(layer)
        for segment in self._segments:
            for node_id, node in segment.nodes.items():
                if layer is None or layer_of(node_id) == layer:
                    yield node

    def relations(self, kind: RelationKind | None = None) -> Iterator[Relation]:
        """Iterate relations in insertion order, base first."""
        yield from self._base.relations(kind)
        for segment in self._segments:
            if kind is None:
                yield from segment.relations
            else:
                yield from segment.by_kind.get(kind, [])

    def out_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        """Outgoing relations of ``node_id``, base edges before delta edges."""
        found = self._base.out_relations(node_id, kind)
        for segment in self._segments:
            found.extend(segment.out.get((node_id, kind), []))
        return found

    def in_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        """Incoming relations of ``node_id``, base edges before delta edges."""
        found = self._base.in_relations(node_id, kind)
        for segment in self._segments:
            found.extend(segment.inc.get((node_id, kind), []))
        return found

    def targets(self, node_id: str, kind: RelationKind) -> list[Node]:
        """Target nodes of outgoing ``kind`` edges."""
        return [self.get(r.target) for r in self.out_relations(node_id, kind)]

    def sources(self, node_id: str, kind: RelationKind) -> list[Node]:
        """Source nodes of incoming ``kind`` edges."""
        return [self.get(r.source) for r in self.in_relations(node_id, kind)]

    # ----------------------------------------------------------- statistics
    def count_nodes(self, layer: str) -> int:
        """Nodes in a layer — O(segments) from maintained counters."""
        return self._base.count_nodes(layer) + sum(
            s.layer_counts[layer] for s in self._segments
        )

    def count_relations(self, kind: RelationKind) -> int:
        """Relations of a kind — O(segments) from maintained counters."""
        return self._base.count_relations(kind) + sum(
            s.kind_counts.get(kind, 0) for s in self._segments
        )

    def stats(self) -> StoreStats:
        """Aggregate statistics over base + deltas (Table 2 shape)."""
        if not self._segments:
            return self._base.stats()
        items = self.count_nodes(ITEM_PREFIX)
        by_domain: dict[str, int] = {
            domain: len(ids)
            for domain, ids in self._base._domain_primitive_ids.items()
        }
        linked = set(self._base._linked_item_ids)
        relations_total = len(self._base._relations)
        for segment in self._segments:
            for domain, ids in segment.domain_primitive_ids.items():
                by_domain[domain] = by_domain.get(domain, 0) + len(ids)
            linked |= segment.linked_item_ids
            relations_total += len(segment.relations)
        return StoreStats(
            primitive_concepts=self.count_nodes(PRIMITIVE_PREFIX),
            ecommerce_concepts=self.count_nodes(ECOMMERCE_PREFIX),
            items=items,
            classes=self.count_nodes(CLASS_PREFIX),
            relations_total=relations_total,
            isa_primitive=self.count_relations(RelationKind.ISA_PRIMITIVE),
            isa_ecommerce=self.count_relations(RelationKind.ISA_ECOMMERCE),
            item_primitive=self.count_relations(RelationKind.ITEM_PRIMITIVE),
            item_ecommerce=self.count_relations(RelationKind.ITEM_ECOMMERCE),
            ecommerce_primitive=self.count_relations(RelationKind.INTERPRETED_BY),
            primitive_by_domain=by_domain,
            linked_item_fraction=(len(linked) / items) if items else 0.0,
        )

    # -------------------------------------------------------------- helpers
    def classes_in_domain(self, domain: str) -> list[ClassNode]:
        """All taxonomy classes of a first-level domain, base first."""
        found = self._base.classes_in_domain(domain)
        for segment in self._segments:
            found.extend(
                segment.nodes[i] for i in segment.domain_class_ids.get(domain, [])
            )
        return found

    def primitives_in_domain(self, domain: str) -> list[PrimitiveConcept]:
        """All primitive concepts of a first-level domain, base first."""
        found = self._base.primitives_in_domain(domain)
        for segment in self._segments:
            found.extend(
                segment.nodes[i]
                for i in segment.domain_primitive_ids.get(domain, [])
            )
        return found

    def _relation_by_key(self, key: tuple[RelationKind, str, str]) -> Relation | None:
        existing = self._base._relation_by_key.get(key)
        if existing is not None:
            return existing
        for segment in self._segments:
            existing = segment.relation_by_key.get(key)
            if existing is not None:
                return existing
        return None


class GenerationalStore:
    """A frozen base store plus copy-on-write delta generations.

    Reads delegate to the currently *published* :class:`GenerationView`
    (lock-free — grab :meth:`current` once to pin a consistent
    generation for a multi-step read).  Writes go to the open
    :class:`DeltaSegment` through the same mutation API as
    :class:`AliCoCoStore` (``add_node``/``add_relation``/``create_*``)
    and stay invisible to readers until published:

    - :meth:`seal` closes the open segment and stages it;
    - :meth:`swap` publishes every staged segment as the next
      generation, bumping :attr:`generation_id` by one;
    - :meth:`publish` is the common ``seal(); swap()`` shorthand.

    Writers, ``seal`` and ``swap`` serialize on one internal lock;
    ``swap`` itself installs the new view with a single attribute
    assignment, so concurrent readers always see a whole generation.

    ``frozen`` is ``True`` and :meth:`freeze` returns ``self``: the
    *published* surface is immutable (the serving tier's caching
    contract), even though new generations can be prepared behind it.

    Long-lived stores bound their segment chain with :meth:`compact`
    (fold every published segment into a new frozen base — reads stay
    bit-identical, :attr:`generation_id` does not move) either manually
    or automatically via ``compact_after_segments``.

    Args:
        base: The frozen build output (frozen here if it is not yet).
        base_generation: Generation id the bare base represents — 0 for
            a fresh build; a compacted snapshot restores the id its base
            was folded at so generation numbering survives a warm start.
        compact_after_segments: When set, every :meth:`swap` that leaves
            more than this many published segments triggers an automatic
            :meth:`compact` — the chain-length bound for stores that
            keep evolving.

    Raises:
        ConfigError: On a negative ``base_generation`` or a
            non-positive ``compact_after_segments``.
    """

    def __init__(self, base: AliCoCoStore, *, base_generation: int = 0,
                 compact_after_segments: int | None = None) -> None:
        if base_generation < 0:
            raise ConfigError(
                f"base_generation must be >= 0, got {base_generation}"
            )
        if compact_after_segments is not None and compact_after_segments <= 0:
            raise ConfigError(
                "compact_after_segments must be positive, got "
                f"{compact_after_segments}"
            )
        self._base = base.freeze()
        self._lock = threading.Lock()
        self._open = DeltaSegment()
        self._staged: list[DeltaSegment] = []
        self._base_generation = base_generation
        self.compact_after_segments = compact_after_segments
        self._view = GenerationView(
            self._base, (), base_generation, base_generation=base_generation
        )
        # Lazily-initialised per-layer id counters for create_*: snapshot
        # replay leaves the base's IdAllocator at zero, so counters start
        # at the pending layer size and probe past collisions.
        self._id_counters: dict[str, int] = {}

    # ------------------------------------------------------------ published
    @property
    def generation_id(self) -> int:
        """Monotonic id of the currently published generation."""
        return self._view.generation_id

    @property
    def base_generation(self) -> int:
        """Generation id folded into the base (0 until a compaction)."""
        return self._base_generation

    def current(self) -> GenerationView:
        """The published view — pin it once per request for consistency."""
        return self._view

    @property
    def frozen(self) -> bool:
        """The published surface is always read-only."""
        return True

    def freeze(self) -> "GenerationalStore":
        """No-op for API compatibility with :class:`AliCoCoStore`."""
        return self

    # ------------------------------------------------------------- mutation
    def _pending(self) -> GenerationView:
        """A private view of published + staged + open (writer-side only)."""
        return GenerationView(
            self._base,
            self._view._segments + tuple(self._staged) + (self._open,),
            self._view.generation_id,
            base_generation=self._base_generation,
        )

    def add_node(self, node: Node) -> Node:
        """Insert a pre-built node into the open delta.

        Raises:
            DuplicateNodeError: If the id exists in any generation,
                staged segment, or the open delta.
            RelationError: If the node type does not match its id prefix.
        """
        with self._lock:
            return self._add_node_locked(node)

    def _add_node_locked(self, node: Node) -> Node:
        if node.id in self._pending():
            raise DuplicateNodeError(f"node {node.id!r} already exists")
        layer = layer_of(node.id)
        if not isinstance(node, _LAYER_TYPES[layer]):
            raise RelationError(
                f"node {node.id!r} has prefix {layer!r} "
                f"but type {type(node).__name__}"
            )
        self._open._add_node(node)
        return node

    def add_relation(self, relation: Relation) -> Relation:
        """Insert a relation into the open delta after validating endpoints.

        Endpoints may live in any layer of the pending state (base, a
        published or staged segment, or the open delta).  Duplicate
        (kind, source, target) triples are ignored across all layers and
        the stored relation is returned, exactly as
        :meth:`AliCoCoStore.add_relation` does.

        Raises:
            NodeNotFoundError: If either endpoint is missing.
            RelationError: If the endpoint layers do not match the kind.
        """
        with self._lock:
            return self._add_relation_locked(relation)

    def _add_relation_locked(self, relation: Relation) -> Relation:
        pending = self._pending()
        for node_id, expected in (
            (relation.source, relation.kind.source_layer),
            (relation.target, relation.kind.target_layer),
        ):
            node = pending.get(node_id)  # NodeNotFoundError if absent
            if layer_of(node.id) != expected:
                raise RelationError(
                    f"node {node_id!r} is in layer {layer_of(node_id)!r}; "
                    f"expected {expected!r}"
                )
        key = (relation.kind, relation.source, relation.target)
        existing = pending._relation_by_key(key)
        if existing is not None:
            return existing
        self._open._add_relation(relation)
        return relation

    def _allocate(self, prefix: str) -> str:
        # Caller holds self._lock.
        pending = self._pending()
        n = self._id_counters.get(prefix)
        if n is None:
            n = pending.count_nodes(prefix)
        while f"{prefix}_{n}" in pending:
            n += 1
        self._id_counters[prefix] = n + 1
        return f"{prefix}_{n}"

    def create_class(
        self, name: str, domain: str, parent_id: str | None = None
    ) -> ClassNode:
        """Allocate an id and insert a taxonomy class into the open delta."""
        with self._lock:
            if parent_id is not None:
                self._pending().get(parent_id)  # validate before inserting
            node = ClassNode(self._allocate(CLASS_PREFIX), name, domain, parent_id)
            self._add_node_locked(node)
            if parent_id is not None:
                self._add_relation_locked(
                    Relation(RelationKind.SUBCLASS_OF, node.id, parent_id)
                )
            return node

    def create_primitive(self, name: str, class_id: str) -> PrimitiveConcept:
        """Allocate an id and insert a primitive concept under ``class_id``."""
        with self._lock:
            class_node = self._pending().get(class_id)
            if layer_of(class_id) != CLASS_PREFIX:
                raise RelationError(
                    f"node {class_id!r} is in layer {layer_of(class_id)!r}; "
                    f"expected {CLASS_PREFIX!r}"
                )
            node = PrimitiveConcept(
                self._allocate(PRIMITIVE_PREFIX), name, class_id, class_node.domain
            )
            self._add_node_locked(node)
            self._add_relation_locked(
                Relation(RelationKind.INSTANCE_OF, node.id, class_id)
            )
            return node

    def create_ecommerce(self, text: str, source: str = "mined") -> ECommerceConcept:
        """Allocate an id and insert an e-commerce concept into the delta."""
        with self._lock:
            return self._add_node_locked(
                ECommerceConcept(
                    self._allocate(ECOMMERCE_PREFIX), text, tuple(text.split()), source
                )
            )

    def create_item(
        self,
        title: str,
        shop: str = "shop_0",
        properties: dict[str, str] | None = None,
    ) -> Item:
        """Allocate an id and insert an item into the open delta."""
        with self._lock:
            return self._add_node_locked(
                Item(self._allocate(ITEM_PREFIX), title, shop, dict(properties or {}))
            )

    # ---------------------------------------------------------- publication
    def seal(self) -> DeltaSegment | None:
        """Close the open delta and stage it for the next :meth:`swap`.

        Returns the sealed segment, or ``None`` when the open delta was
        empty (nothing to stage).
        """
        with self._lock:
            if self._open.empty:
                return None
            segment = self._open.seal()
            self._staged.append(segment)
            self._open = DeltaSegment()
            return segment

    def swap(self) -> int:
        """Atomically publish all staged segments as the next generation.

        A no-op (current :attr:`generation_id` returned) when nothing is
        staged — an empty publish must not invalidate caches.  Empty
        segments are dropped rather than published (``seal`` never
        stages one, but a replayed or hand-staged empty segment must not
        mint a no-op generation that lengthens the chain and churns
        generation-keyed caches).

        When ``compact_after_segments`` is configured and the publish
        leaves more than that many segments, the chain is folded into a
        new base before returning (reads stay bit-identical).

        Returns:
            The now-published generation id.
        """
        with self._lock:
            staged = [s for s in self._staged if not s.empty]
            self._staged = []
            if not staged:
                return self._view.generation_id
            next_id = self._view.generation_id + 1
            view = GenerationView(
                self._base,
                self._view._segments + tuple(staged),
                next_id,
                self._view.segment_generations + (next_id,) * len(staged),
                base_generation=self._base_generation,
            )
            self._view = view  # single assignment: atomic publish
            if (
                self.compact_after_segments is not None
                and len(view._segments) > self.compact_after_segments
            ):
                self._compact_locked()
            return view.generation_id

    def publish(self) -> int:
        """``seal()`` + ``swap()``: publish whatever the open delta holds."""
        self.seal()
        return self.swap()

    def compact(self) -> int:
        """Fold every published segment into a new frozen base.

        Replays the published view — nodes then relations, in global
        insertion order through the trusted bulk path, exactly like
        :func:`flatten` — into a fresh :class:`AliCoCoStore`, freezes
        it, and atomically installs it as the new zero-segment view.
        Every read API answers bit-identically before and after
        (insertion order, weight-tie order and name-collision order are
        all preserved), and :attr:`generation_id` does not move:
        compaction is a representation change, not a publish, so
        generation-pinned caches stay valid.

        Readers pinned to the old overlay keep working (its base and
        sealed segments are untouched); staged and open segments are
        *not* folded — they belong to unpublished generations and stay
        writable behind the new base.

        Returns:
            The (unchanged) published generation id.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        view = self._view
        if not view._segments:
            return view.generation_id  # nothing to fold
        base = AliCoCoStore()
        for node in view.nodes():
            base.add_node(node)
        base.add_relations_trusted(view.relations())
        self._base = base.freeze()
        self._base_generation = view.generation_id
        # Single assignment: readers see the overlay or the folded base,
        # both of which answer every read identically.
        self._view = GenerationView(
            self._base,
            (),
            view.generation_id,
            base_generation=view.generation_id,
        )
        return view.generation_id

    @property
    def open_counts(self) -> tuple[int, int]:
        """(nodes, relations) waiting in the open delta — for observability."""
        with self._lock:
            return (len(self._open.nodes), len(self._open.relations))

    # ------------------------------------------------------- delegated reads
    def get(self, node_id: str) -> Node:
        return self._view.get(node_id)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._view

    def __len__(self) -> int:
        return len(self._view)

    def find_by_name(self, layer: str, name: str) -> list[Node]:
        return self._view.find_by_name(layer, name)

    def nodes(self, layer: str | None = None) -> Iterator[Node]:
        return self._view.nodes(layer)

    def relations(self, kind: RelationKind | None = None) -> Iterator[Relation]:
        return self._view.relations(kind)

    def out_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        return self._view.out_relations(node_id, kind)

    def in_relations(self, node_id: str, kind: RelationKind) -> list[Relation]:
        return self._view.in_relations(node_id, kind)

    def targets(self, node_id: str, kind: RelationKind) -> list[Node]:
        return self._view.targets(node_id, kind)

    def sources(self, node_id: str, kind: RelationKind) -> list[Node]:
        return self._view.sources(node_id, kind)

    def count_nodes(self, layer: str) -> int:
        return self._view.count_nodes(layer)

    def count_relations(self, kind: RelationKind) -> int:
        return self._view.count_relations(kind)

    def stats(self) -> StoreStats:
        return self._view.stats()

    def classes_in_domain(self, domain: str) -> list[ClassNode]:
        return self._view.classes_in_domain(domain)

    def primitives_in_domain(self, domain: str) -> list[PrimitiveConcept]:
        return self._view.primitives_in_domain(domain)

    # -------------------------------------------------------------- segments
    @property
    def published_segments(self) -> tuple[DeltaSegment, ...]:
        """Sealed segments of the published view, in publish order."""
        return self._view._segments


def flatten(view: GenerationView | GenerationalStore) -> AliCoCoStore:
    """Replay a generation view into one monolithic (unfrozen) store.

    Node objects are shared, not copied (they are immutable); relations
    replay in global insertion order through the trusted bulk path, so
    the flattened store answers every read identically to the view.
    Used by snapshot loaders that want a plain store (sharding, tools).

    Raises:
        ConfigError: If ``view`` is not a generational view/store.
    """
    if isinstance(view, GenerationalStore):
        view = view.current()
    if not isinstance(view, GenerationView):
        raise ConfigError(
            f"flatten() expects a GenerationView, got {type(view).__name__}"
        )
    store = AliCoCoStore()
    for node in view.nodes():
        store.add_node(node)
    store.add_relations_trusted(view.relations())
    return store


def _replay_segment(
    store: GenerationalStore,
    nodes: Iterable[Node],
    relations: Iterable[Relation],
) -> None:
    """Re-apply one persisted delta (validating) and leave it unpublished."""
    for node in nodes:
        store.add_node(node)
    for relation in relations:
        store.add_relation(relation)
