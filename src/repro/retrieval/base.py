"""The pluggable retriever interface behind candidate generation.

AliCoCo serves retrieval-then-verify (Section 6): a cheap first stage
proposes candidates and only those reach the deep matcher.  This package
makes that first stage *swappable* — lexical (BM25), dense (brute force
or ANN), or a hybrid fusing both — behind one small contract:

- ``fit(ids, data)`` indexes an id-keyed collection (token sequences for
  lexical backends, vectors for dense ones);
- ``retrieve(query, top_k)`` answers with the best ``(id, score)`` pairs;
- ``stats()`` reports what the index is and how much work queries do;
- ``to_state()`` / ``from_state()`` round-trip the *fitted* index through
  JSON so a snapshot warm start skips the build entirely.

Determinism contract: every backend breaks score ties by **fit order**
(the position an id was given to ``fit``), so two indexes fitted from the
same inputs — or one fitted and one rehydrated — return bit-identical
rankings.  The benchmarks gate on this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ConfigError, DataError, NotFittedError


@dataclass(frozen=True)
class RetrieverStats:
    """What a fitted retriever is and what its queries cost.

    Attributes:
        backend: Backend name (``"bruteforce"``, ``"ivf"``, ...).
        size: Number of indexed documents.
        dim: Vector dimensionality (0 for lexical backends).
        queries: Queries answered since ``fit``.
        candidates_scored: Total documents actually scored across those
            queries — the sublinearity witness: for ANN backends this
            grows much slower than ``queries * size``.
        extra: Backend-specific knobs and structure sizes.
    """

    backend: str
    size: int
    dim: int = 0
    queries: int = 0
    candidates_scored: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def scan_fraction(self) -> float:
        """Mean fraction of the collection scored per query (1.0 = linear)."""
        if not self.queries or not self.size:
            return 0.0
        return self.candidates_scored / (self.queries * self.size)


class BaseRetriever(ABC):
    """One first-stage candidate source over an id-keyed collection.

    Backends that can grow without a refit advertise ``supports_add``
    and implement :meth:`add`; everyone else inherits the refusing
    default, which callers treat as a refit-fallback signal (the
    generational serving tier clones an index, ``add``\\ s the new
    generation's documents to the clone, and refits only when the
    backend cannot extend — see :mod:`repro.kg.generations`).
    """

    #: Backend name used in stats and serialised state.
    backend = "base"

    #: Whether :meth:`add` extends the fitted index in place.
    supports_add = False

    @abstractmethod
    def fit(self, ids: Sequence, data: Sequence) -> "BaseRetriever":
        """Index a collection: one id per data element, aligned.

        Args:
            ids: Hashable document ids (JSON-serialisable for snapshots).
            data: Per-id payload — token sequences for lexical backends,
                vectors for dense ones.
        """

    @abstractmethod
    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """The best ``top_k`` (id, score) pairs, best first.

        Ties break by fit order; fewer than ``top_k`` pairs may come back
        (lexical backends only return nonzero-score documents).
        """

    def add(self, ids: Sequence, data: Sequence) -> "BaseRetriever":
        """Extend a fitted index with new documents, preserving fit order.

        New ids take the positions after the existing collection, so the
        tie-break contract ("fit order") extends naturally: an index
        grown by ``add`` ranks exactly like one fitted from the
        concatenated collection *when the backend's structure permits*
        (each backend documents how close it comes).  Callers must not
        mutate an index other threads are reading — clone via
        ``from_state(to_state())``, ``add`` to the clone, then publish.

        Raises:
            ConfigError: For backends with ``supports_add = False``.
        """
        raise ConfigError(
            f"{type(self).__name__} ({self.backend}) does not support "
            "incremental add; refit from the full collection instead"
        )

    @abstractmethod
    def stats(self) -> RetrieverStats:
        """Size, knobs, and per-query work counters."""

    @abstractmethod
    def to_state(self) -> dict[str, Any]:
        """The fitted index as a JSON-serialisable dict (snapshot payload)."""

    def __len__(self) -> int:
        return self.stats().size

    def _require_fitted(self, fitted: bool) -> None:
        if not fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")


def check_state_backend(state: Mapping[str, Any], expected: str) -> None:
    """Reject a serialised index state written by a different backend.

    Raises:
        DataError: If the state's backend tag disagrees with ``expected``.
    """
    recorded = state.get("backend")
    if recorded != expected:
        raise DataError(
            f"retriever state holds a {recorded!r} index, expected {expected!r}"
        )
