"""The lexical arm: :class:`~repro.matching.bm25.BM25Index` as a retriever.

The inverted index already answers "which documents best match these
tokens" sublinearly (postings of the query terms only); this adapter
gives it the :class:`~repro.retrieval.base.BaseRetriever` shape so it can
slot into a :class:`~repro.retrieval.fusion.HybridRetriever` next to a
dense backend, carry work counters, and round-trip through snapshots
like every other backend.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import DataError
from .base import BaseRetriever, RetrieverStats, check_state_backend


def _bm25_index_class():
    """Deferred: ``repro.matching`` imports this package at its top level
    (the candidate-generation facade), so a module-level import here would
    close an import cycle whenever ``repro.retrieval`` loads first."""
    from ..matching.bm25 import BM25Index

    return BM25Index


class BM25Retriever(BaseRetriever):
    """BM25 inverted-index retrieval over id-keyed token sequences.

    Args:
        k1 / b: BM25 parameters, forwarded to the index.
    """

    backend = "bm25"
    supports_add = True

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self._index = _bm25_index_class()(k1=k1, b=b)
        self._queries = 0
        self._scored = 0
        self._fitted = False

    def fit(self, ids: Sequence, data: Sequence) -> "BM25Retriever":
        """Index an id-aligned collection of token sequences."""
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} token sequences")
        self._index = type(self._index)(k1=self._index.k1, b=self._index.b)
        self._index.fit(dict(zip(ids, (list(tokens) for tokens in data))))
        self._queries = 0
        self._scored = 0
        self._fitted = True
        return self

    def add(self, ids: Sequence, data: Sequence) -> "BM25Retriever":
        """Extend the index with new documents, refit-identically.

        Delegates to :meth:`BM25Index.add_documents`, which recomputes
        the corpus statistics (idf, average length, every norm) over the
        grown collection — scores and rankings match a fresh fit of the
        concatenated collection exactly.

        Raises:
            DataError: On a count mismatch, a duplicate id, or an index
                rehydrated from a state without raw document lengths
                (pre-``add`` snapshots) — callers should refit then.
        """
        self._require_fitted(self._fitted)
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} token sequences")
        if ids:
            self._index.add_documents(
                dict(zip(ids, (list(tokens) for tokens in data)))
            )
        return self

    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """Top-k over the query terms' postings; zero-score docs absent."""
        self._require_fitted(self._fitted)
        tokens = list(query)
        # One postings walk; the touched-position count is the work metric
        # (documents sharing no term are never scored at all).
        accumulated = self._index._accumulate(tokens)
        self._queries += 1
        self._scored += len(accumulated)
        best = sorted(accumulated.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        return [(self._index._doc_ids[position], score) for position, score in best]

    def stats(self) -> RetrieverStats:
        return RetrieverStats(
            backend=self.backend,
            size=len(self._index) if self._fitted else 0,
            queries=self._queries,
            candidates_scored=self._scored,
            extra={"k1": self._index.k1, "b": self._index.b},
        )

    def to_state(self) -> dict[str, Any]:
        self._require_fitted(self._fitted)
        return {"backend": self.backend, "index": self._index.to_state()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "BM25Retriever":
        """Rehydrate a fitted adapter from :meth:`to_state` output.

        Raises:
            DataError: On a wrong backend tag or malformed index state.
        """
        check_state_backend(state, cls.backend)
        try:
            inner = state["index"]
        except (KeyError, TypeError) as error:
            raise DataError(f"malformed BM25 retriever state: {error}") from error
        retriever = cls()
        retriever._index = _bm25_index_class().from_state(inner)
        retriever._fitted = True
        return retriever
