"""HNSW-lite: a layered small-world graph for ANN, numpy + heapq only.

A faithful-but-small reading of Hierarchical Navigable Small Worlds:
every point draws a geometric level (seeded RNG, so the build is
deterministic), upper layers form coarse express lanes searched greedily,
and layer 0 holds the full collection searched with a best-first beam of
width ``ef``.  Per-query work is O(ef·M·d)-ish regardless of collection
size — the graph hop count grows logarithmically, not linearly.

Neighbour expansion is vectorised (one matmul per visited node's
adjacency list), but the beam itself is a python loop: at small
collections the numpy brute-force matmul wins on constant factors, and
:class:`IVFIndex` is the latency backend of choice.  HNSW earns its keep
on recall-per-scored-candidate (see ``stats().scan_fraction``) and as the
second, structurally different ANN implementation keeping the recall
oracle honest.

All ties (heap order, neighbour pruning, final ranking) break by fit
position, so fits and snapshot warm starts retrieve bit-identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import DataError
from ..utils.rng import spawn_rng
from .base import BaseRetriever, RetrieverStats, check_state_backend
from .dense import (
    METRICS,
    matrix_from_state,
    matrix_to_state,
    pack_vectors,
    prepare_query,
)

#: Hard cap on sampled levels; beyond this a layer holds ~n/M^32 points.
_MAX_LEVEL = 32


class HNSWLiteIndex(BaseRetriever):
    """Layered greedy-search small-world graph.

    Args:
        m: Neighbours kept per node on upper layers (2m on layer 0).
        ef_construction: Beam width while building.
        ef_search: Beam width while querying (the recall/latency knob;
            raised to ``top_k`` when a query asks for more).
        seed: Determinism root for level sampling.
        metric: ``"cosine"`` or ``"ip"``.
    """

    backend = "hnsw"
    supports_add = True

    def __init__(
        self,
        m: int = 24,
        ef_construction: int = 100,
        ef_search: int = 96,
        seed: int = 0,
        metric: str = "cosine",
    ):
        if metric not in METRICS:
            raise DataError(f"unknown metric {metric!r}; expected one of {METRICS}")
        if m <= 0:
            raise DataError(f"m must be positive, got {m}")
        if ef_construction <= 0 or ef_search <= 0:
            raise DataError("ef_construction and ef_search must be positive")
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self.metric = metric
        self._ids: list = []
        self._matrix = np.empty((0, 0), dtype=np.float32)
        self._levels = np.empty(0, dtype=np.intp)
        # _neighbors[layer][position] -> list of neighbour positions.
        self._neighbors: list[list[list[int]]] = []
        self._entry = -1
        self._max_level = -1
        self._queries = 0
        self._scored = 0
        self._fitted = False

    # ------------------------------------------------------------------ build
    def fit(self, ids: Sequence, data: Sequence) -> "HNSWLiteIndex":
        """Insert points in fit order under pre-drawn deterministic levels."""
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        self._matrix = pack_vectors(data, self.metric)
        self._ids = list(ids)
        n = self._matrix.shape[0]
        rng = spawn_rng(self.seed, "retrieval", "hnsw-levels")
        multiplier = 1.0 / np.log(max(self.m, 2))
        draws = rng.random(n)
        self._levels = np.minimum(
            np.floor(-np.log(np.where(draws == 0.0, 1e-12, draws)) * multiplier),
            _MAX_LEVEL,
        ).astype(np.intp)
        self._neighbors = []
        self._entry = -1
        self._max_level = -1
        for position in range(n):
            self._insert(position)
        self._queries = 0
        self._scored = 0
        self._fitted = True
        return self

    def _insert(self, position: int) -> None:
        level = int(self._levels[position])
        while len(self._neighbors) <= level:
            self._neighbors.append([[] for _ in range(self._matrix.shape[0])])
        if self._entry < 0:
            self._entry = position
            self._max_level = level
            return
        vector = self._matrix[position]
        cursor = self._entry
        for layer in range(self._max_level, level, -1):
            cursor = self._greedy_closest(vector, cursor, layer, count=False)
        entries = [cursor]
        for layer in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(
                vector, entries, self.ef_construction, layer, count=False
            )
            ranked = sorted(found, key=lambda pair: (-pair[0], pair[1]))
            cap = self.m * 2 if layer == 0 else self.m
            chosen = [other for _, other in ranked[: self.m]]
            self._neighbors[layer][position] = list(chosen)
            for other in chosen:
                links = self._neighbors[layer][other]
                links.append(position)
                if len(links) > cap:
                    self._neighbors[layer][other] = self._prune(other, links, cap)
            entries = [other for _, other in ranked]
        if level > self._max_level:
            self._entry = position
            self._max_level = level

    def add(self, ids: Sequence, data: Sequence) -> "HNSWLiteIndex":
        """Insert new points into the existing graph, no rebuild.

        This is HNSW's native growth mode: each new point draws a level
        and runs the same beam insertion as ``fit``.  Levels come from a
        stream derived from ``(seed, start position)``, so growing a
        given index by a given batch is deterministic — but the draws
        differ from what one big ``fit`` would have produced, so an index
        grown by ``add`` is *not* bit-identical to a refit (recall stays
        in the same band; the graph is simply a different valid HNSW).
        Callers needing refit-identity must refit.

        Raises:
            DataError: On a count or dimension mismatch.
        """
        self._require_fitted(self._fitted)
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        if not ids:
            return self
        rows = pack_vectors(data, self.metric)
        if rows.shape[1] != self._matrix.shape[1]:
            raise DataError(
                f"new vectors have dim {rows.shape[1]}, index has "
                f"{self._matrix.shape[1]}"
            )
        start = self._matrix.shape[0]
        rng = spawn_rng(self.seed, "retrieval", "hnsw-levels-add", str(start))
        multiplier = 1.0 / np.log(max(self.m, 2))
        draws = rng.random(rows.shape[0])
        levels = np.minimum(
            np.floor(-np.log(np.where(draws == 0.0, 1e-12, draws)) * multiplier),
            _MAX_LEVEL,
        ).astype(np.intp)
        self._matrix = np.ascontiguousarray(np.vstack([self._matrix, rows]))
        self._ids.extend(ids)
        self._levels = np.concatenate([self._levels, levels])
        for layer in self._neighbors:
            layer.extend([] for _ in range(rows.shape[0]))
        for position in range(start, start + rows.shape[0]):
            self._insert(position)
        return self

    def _prune(self, position: int, links: list[int], cap: int) -> list[int]:
        """Keep the ``cap`` links closest to ``position`` (ties: fit order)."""
        candidates = np.asarray(sorted(set(links)), dtype=np.intp)
        similarities = self._matrix[candidates] @ self._matrix[position]
        order = np.lexsort((candidates, -similarities))
        return [int(candidates[i]) for i in order[:cap]]

    # ----------------------------------------------------------------- search
    def _greedy_closest(
        self, vector: np.ndarray, start: int, layer: int, count: bool = True
    ) -> int:
        """Hill-climb one layer to the locally closest node."""
        best = start
        best_sim = float(self._matrix[best] @ vector)
        improved = True
        while improved:
            improved = False
            neighbors = self._neighbors[layer][best]
            if not neighbors:
                break
            block = np.asarray(neighbors, dtype=np.intp)
            sims = self._matrix[block] @ vector
            if count:
                self._scored += block.size
            top = int(np.lexsort((block, -sims))[0])
            if sims[top] > best_sim:
                best = int(block[top])
                best_sim = float(sims[top])
                improved = True
        return best

    def _search_layer(
        self,
        vector: np.ndarray,
        entries: Sequence[int],
        ef: int,
        layer: int,
        count: bool = True,
    ) -> list[tuple[float, int]]:
        """Best-first beam over one layer: up to ``ef`` (sim, position) pairs.

        Neighbour similarities are computed one adjacency list at a time
        (a single matmul per expanded node); heap entries are
        (±sim, position) tuples so equal similarities pop in fit order.
        """
        visited = set(entries)
        sims = self._matrix[np.asarray(list(entries), dtype=np.intp)] @ vector
        if count:
            self._scored += len(entries)
        candidates = [(-float(s), p) for s, p in zip(sims, entries)]
        results = [(float(s), p) for s, p in zip(sims, entries)]
        heapq.heapify(candidates)
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            negative, position = heapq.heappop(candidates)
            if len(results) >= ef and -negative < results[0][0]:
                break
            fresh = [
                other
                for other in self._neighbors[layer][position]
                if other not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            block = np.asarray(fresh, dtype=np.intp)
            sims = self._matrix[block] @ vector
            if count:
                self._scored += block.size
            floor = results[0][0] if len(results) >= ef else -np.inf
            for similarity, other in zip(sims, fresh):
                similarity = float(similarity)
                if len(results) < ef or similarity > floor:
                    heapq.heappush(candidates, (-similarity, other))
                    heapq.heappush(results, (similarity, other))
                    if len(results) > ef:
                        heapq.heappop(results)
                    floor = results[0][0] if len(results) >= ef else -np.inf
        return results

    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """Greedy descent through upper layers, beam search on layer 0."""
        self._require_fitted(self._fitted)
        vector = prepare_query(query, self._matrix.shape[1], self.metric)
        self._queries += 1
        cursor = self._entry
        for layer in range(self._max_level, 0, -1):
            cursor = self._greedy_closest(vector, cursor, layer)
        found = self._search_layer(vector, [cursor], max(self.ef_search, top_k), 0)
        ranked = sorted(found, key=lambda pair: (-pair[0], pair[1]))[:top_k]
        return [(self._ids[position], similarity) for similarity, position in ranked]

    # ------------------------------------------------------------------ state
    def stats(self) -> RetrieverStats:
        edges = sum(len(links) for layer in self._neighbors for links in layer)
        return RetrieverStats(
            backend=self.backend,
            size=len(self._ids),
            dim=int(self._matrix.shape[1]) if self._fitted else 0,
            queries=self._queries,
            candidates_scored=self._scored,
            extra={
                "metric": self.metric,
                "m": self.m,
                "ef_search": self.ef_search,
                "layers": len(self._neighbors),
                "edges": edges,
            },
        )

    def to_state(self) -> dict[str, Any]:
        """The whole fitted graph; warm starts skip every insertion."""
        self._require_fitted(self._fitted)
        return {
            "backend": self.backend,
            "metric": self.metric,
            "m": self.m,
            "ef_search": self.ef_search,
            "ids": list(self._ids),
            "matrix": matrix_to_state(self._matrix),
            "levels": [int(level) for level in self._levels],
            "entry": int(self._entry),
            "neighbors": [
                [[int(other) for other in links] for links in layer]
                for layer in self._neighbors
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "HNSWLiteIndex":
        """Rehydrate a fitted graph, bit-identical to the fresh fit.

        Raises:
            DataError: On a wrong backend tag or malformed fields.
        """
        check_state_backend(state, cls.backend)
        try:
            index = cls(
                m=int(state["m"]),
                ef_search=int(state["ef_search"]),
                metric=str(state["metric"]),
            )
            index._ids = list(state["ids"])
            index._matrix = matrix_from_state(state["matrix"])
            index._levels = np.asarray(
                [int(level) for level in state["levels"]], dtype=np.intp
            )
            index._entry = int(state["entry"])
            index._neighbors = [
                [[int(other) for other in links] for links in layer]
                for layer in state["neighbors"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed HNSW index state: {error}") from error
        n = len(index._ids)
        if index._matrix.shape[0] != n or index._levels.shape[0] != n:
            raise DataError("HNSW state ids, matrix and levels disagree")
        if not index._neighbors or any(len(layer) != n for layer in index._neighbors):
            raise DataError("HNSW state adjacency does not cover the collection")
        if not 0 <= index._entry < n:
            raise DataError(f"HNSW state entry point {index._entry} out of range")
        index._max_level = len(index._neighbors) - 1
        index._fitted = True
        return index
