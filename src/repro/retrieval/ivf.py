"""IVF: inverted-file ANN with a k-means coarse quantizer, numpy-only.

The classic sublinear trade: partition the collection into ``n_lists``
Voronoi cells at fit time (spherical k-means over the packed float32
matrix), then answer a query by scoring only the ``nprobe`` cells whose
centroids it is closest to.  Per-query work drops from O(n·d) to
O(n_lists·d + nprobe·(n/n_lists)·d) — at 10k items with the default
sqrt-n lists this scores ~1/12th of the collection, which is where the
benchmark's ≥3x latency win over :class:`~repro.retrieval.dense.BruteForceDense`
comes from, at recall@50 ≥ 0.9.

Everything is deterministic under the constructor seed: k-means
initialisation draws from :func:`repro.utils.rng.spawn_rng`, empty
clusters are re-seeded by a fixed rule (the globally worst-assigned
point), and ties everywhere break by fit position.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import DataError
from ..utils.rng import spawn_rng
from .base import BaseRetriever, RetrieverStats, check_state_backend
from .dense import (
    METRICS,
    matrix_from_state,
    matrix_to_state,
    normalize_rows,
    pack_vectors,
    prepare_query,
    top_k_positions,
)


def _kmeans(
    matrix: np.ndarray, n_lists: int, iterations: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Spherical k-means: (centroids, assignments), deterministic.

    Rows of ``matrix`` are assumed normalised (cosine) or raw (ip); either
    way assignment maximises the inner product, and centroids are
    re-normalised means — the spherical variant, which matches retrieval's
    inner-product scoring.
    """
    n = matrix.shape[0]
    rng = spawn_rng(seed, "retrieval", "ivf-kmeans")
    start = rng.choice(n, size=n_lists, replace=False)
    centroids = matrix[np.sort(start)].copy()
    assignments = np.zeros(n, dtype=np.intp)
    for _ in range(iterations):
        similarities = matrix @ centroids.T
        assignments = np.argmax(similarities, axis=1)
        best = similarities[np.arange(n), assignments]
        for cell in range(n_lists):
            members = assignments == cell
            if not np.any(members):
                # Deterministic re-seed: steal the point the quantizer
                # currently represents worst (lowest best-similarity),
                # earliest position on ties.
                worst = int(np.argmin(best))
                centroids[cell] = matrix[worst]
                assignments[worst] = cell
                best[worst] = np.inf
                continue
            centroids[cell] = matrix[members].mean(axis=0)
        centroids = normalize_rows(centroids)
    similarities = matrix @ centroids.T
    assignments = np.argmax(similarities, axis=1)
    return centroids, assignments


class IVFIndex(BaseRetriever):
    """k-means coarse quantizer + per-cell packed sub-matrices.

    Args:
        n_lists: Voronoi cells; default ``round(sqrt(n))`` at fit time.
        nprobe: Cells scored per query (the recall/latency knob).
        iterations: k-means refinement passes.
        seed: Determinism root for the quantizer.
        metric: ``"cosine"`` or ``"ip"``.
    """

    backend = "ivf"
    supports_add = True

    def __init__(
        self,
        n_lists: int | None = None,
        nprobe: int = 6,
        iterations: int = 10,
        seed: int = 0,
        metric: str = "cosine",
    ):
        if metric not in METRICS:
            raise DataError(f"unknown metric {metric!r}; expected one of {METRICS}")
        if n_lists is not None and n_lists <= 0:
            raise DataError(f"n_lists must be positive, got {n_lists}")
        if nprobe <= 0:
            raise DataError(f"nprobe must be positive, got {nprobe}")
        self.n_lists = n_lists
        self.nprobe = nprobe
        self.iterations = iterations
        self.seed = seed
        self.metric = metric
        self._ids: list = []
        self._matrix = np.empty((0, 0), dtype=np.float32)
        self._centroids = np.empty((0, 0), dtype=np.float32)
        self._members: list[np.ndarray] = []
        self._cells: list[np.ndarray] = []
        self._queries = 0
        self._scored = 0
        self._added = 0
        self._fitted = False

    def fit(self, ids: Sequence, data: Sequence) -> "IVFIndex":
        """Pack, quantize, and bucket an id-aligned vector collection."""
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        self._matrix = pack_vectors(data, self.metric)
        self._ids = list(ids)
        n = self._matrix.shape[0]
        n_lists = self.n_lists or max(1, round(math.sqrt(n)))
        n_lists = min(n_lists, n)
        self._centroids, assignments = _kmeans(
            self._matrix, n_lists, self.iterations, self.seed
        )
        self._bucket(assignments, n_lists)
        self._queries = 0
        self._scored = 0
        self._added = 0
        self._fitted = True
        return self

    def _bucket(self, assignments: np.ndarray, n_lists: int) -> None:
        """Per-cell member positions + contiguous sub-matrices (scan units)."""
        self._members = [
            np.flatnonzero(assignments == cell) for cell in range(n_lists)
        ]
        self._cells = [
            np.ascontiguousarray(self._matrix[members]) for members in self._members
        ]

    def add(self, ids: Sequence, data: Sequence) -> "IVFIndex":
        """Delta-merge new vectors into the existing cells, no re-quantize.

        Each new row joins the cell of its nearest *existing* centroid
        (argmax inner product, lowest cell index on ties — the k-means
        assignment rule), so queries see it whenever that cell is probed.
        Centroids are **not** refreshed: after heavy growth the quantizer
        drifts from the data and recall degrades relative to a refit —
        the documented trade for a swap that never re-runs k-means.  The
        ``added_since_fit`` stats counter tracks how far an index has
        drifted so callers can schedule a refit.

        Raises:
            DataError: On a count or dimension mismatch.
        """
        self._require_fitted(self._fitted)
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        if not ids:
            return self
        rows = pack_vectors(data, self.metric)
        if rows.shape[1] != self._matrix.shape[1]:
            raise DataError(
                f"new vectors have dim {rows.shape[1]}, index has "
                f"{self._matrix.shape[1]}"
            )
        start = self._matrix.shape[0]
        assignments = np.argmax(rows @ self._centroids.T, axis=1)
        self._matrix = np.ascontiguousarray(np.vstack([self._matrix, rows]))
        self._ids.extend(ids)
        for cell in np.unique(assignments):
            joined = start + np.flatnonzero(assignments == cell)
            self._members[cell] = np.concatenate([self._members[cell], joined])
            self._cells[cell] = np.ascontiguousarray(self._matrix[self._members[cell]])
        self._added += len(ids)
        return self

    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """Score the ``nprobe`` closest cells only."""
        self._require_fitted(self._fitted)
        vector = prepare_query(query, self._matrix.shape[1], self.metric)
        centroid_scores = self._centroids @ vector
        n_lists = centroid_scores.shape[0]
        nprobe = self.nprobe
        self._queries += 1
        if nprobe < n_lists:
            # Results are selected over the *union* of probed cells, so
            # probe order is irrelevant and a raw argpartition suffices —
            # deterministic for identical centroid scores, which fresh
            # fits and warm starts share bit-for-bit.
            probe = np.argpartition(-centroid_scores, nprobe - 1)[:nprobe].tolist()
        else:
            probe = range(n_lists)
        # Segment-wise writes into per-query buffers (thread-safe: no
        # shared scratch) instead of concatenating nprobe arrays — the
        # dominant python-side cost at small nprobe.
        all_members = self._members
        cells = self._cells
        total = sum(all_members[cell].size for cell in probe)
        if not total:
            return []
        scores = np.empty(total, dtype=np.float32)
        positions = np.empty(total, dtype=np.intp)
        offset = 0
        for cell in probe:
            members = all_members[cell]
            if not members.size:
                continue
            stop = offset + members.size
            np.dot(cells[cell], vector, out=scores[offset:stop])
            positions[offset:stop] = members
            offset = stop
        self._scored += total
        best = top_k_positions(scores, positions, top_k)
        ids = self._ids
        return list(
            zip(map(ids.__getitem__, positions[best].tolist()), scores[best].tolist())
        )

    def stats(self) -> RetrieverStats:
        sizes = [members.size for members in self._members]
        return RetrieverStats(
            backend=self.backend,
            size=len(self._ids),
            dim=int(self._matrix.shape[1]) if self._fitted else 0,
            queries=self._queries,
            candidates_scored=self._scored,
            extra={
                "metric": self.metric,
                "n_lists": len(self._members),
                "nprobe": self.nprobe,
                "mean_list_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
                "added_since_fit": self._added,
            },
        )

    def to_state(self) -> dict[str, Any]:
        """Centroids + assignments + vectors: the whole fitted quantizer.

        Warm starts rebuild the per-cell sub-matrices from the recorded
        assignments — no k-means re-run, bit-identical retrieval.
        """
        self._require_fitted(self._fitted)
        assignments = np.empty(len(self._ids), dtype=np.intp)
        for cell, members in enumerate(self._members):
            assignments[members] = cell
        return {
            "backend": self.backend,
            "metric": self.metric,
            "nprobe": self.nprobe,
            "ids": list(self._ids),
            "matrix": matrix_to_state(self._matrix),
            "centroids": matrix_to_state(self._centroids),
            "assignments": [int(cell) for cell in assignments],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "IVFIndex":
        """Rehydrate a fitted IVF index, skipping the k-means build.

        Raises:
            DataError: On a wrong backend tag or malformed fields.
        """
        check_state_backend(state, cls.backend)
        try:
            index = cls(nprobe=int(state["nprobe"]), metric=str(state["metric"]))
            index._ids = list(state["ids"])
            index._matrix = matrix_from_state(state["matrix"])
            index._centroids = matrix_from_state(state["centroids"])
            assignments = np.asarray(
                [int(cell) for cell in state["assignments"]], dtype=np.intp
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed IVF index state: {error}") from error
        n_lists = index._centroids.shape[0]
        if len(index._ids) != index._matrix.shape[0]:
            raise DataError(
                f"IVF state has {len(index._ids)} ids for "
                f"{index._matrix.shape[0]} rows"
            )
        if assignments.shape[0] != len(index._ids) or (
            assignments.size and (assignments.min() < 0 or assignments.max() >= n_lists)
        ):
            raise DataError("IVF state assignments disagree with its centroids")
        index.n_lists = n_lists
        index._bucket(assignments, n_lists)
        index._fitted = True
        return index
