"""Reciprocal Rank Fusion: one candidate list out of many retrievers.

BM25 misses semantic drift ("mid-autumn festival gifts" never mentions
moon cakes); dense retrieval misses exact lexical pins (model numbers,
brand names).  RRF fuses their ranked lists without comparing their
incomparable scores: a document at rank ``r`` in an arm contributes
``weight / (k + r)`` (ranks start at 1, ``k = 60`` by default), and
documents are re-ranked by the summed contribution.  Only *ranks* cross
the fusion boundary, so any retriever mix composes.

Determinism: fused ties break by first appearance across the arm lists
(arm order, then rank) — stable under re-fits and snapshot warm starts
because every backend's own ranking is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ConfigError, DataError
from .base import BaseRetriever, RetrieverStats, check_state_backend
from .lexical import BM25Retriever

#: The RRF constant from the original Cormack et al. formulation; large
#: enough that depth-of-list matters more than exact rank near the top.
DEFAULT_RRF_K = 60


@dataclass(frozen=True)
class HybridQuery:
    """One query, both arms: tokens for lexical, a vector for dense.

    Either side may be ``None`` when the corresponding arm should sit the
    query out (e.g. no dense encoder available for raw text) — the other
    arm's ranking then passes through fusion unchanged.
    """

    tokens: tuple[str, ...] | None = None
    vector: Any = None


def rrf_fuse(
    rankings: Sequence[Sequence[tuple[Any, float]]],
    k: int = DEFAULT_RRF_K,
    weights: Sequence[float] | None = None,
) -> list[tuple[Any, float]]:
    """Fuse ranked (id, score) lists into one, best first.

    Args:
        rankings: One ranked list per arm (best first).  Empty lists are
            legal (that arm simply contributes nothing); a duplicate id
            within one arm counts once, at its best (first) rank.
        k: The RRF constant; higher flattens rank differences.
        weights: Per-arm multipliers, default all 1.0.

    Returns:
        (id, fused score) pairs sorted by score desc, first-appearance
        order on ties.

    Raises:
        ConfigError: If ``k`` is not positive or the weights count
            disagrees with the arm count.
    """
    if k <= 0:
        raise ConfigError(f"rrf k must be positive, got {k}")
    if weights is None:
        weights = [1.0] * len(rankings)
    if len(weights) != len(rankings):
        raise ConfigError(f"{len(weights)} weights for {len(rankings)} ranked lists")
    fused: dict[Any, float] = {}
    for ranking, weight in zip(rankings, weights):
        seen_in_arm: set = set()
        rank = 0
        for doc_id, _ in ranking:
            if doc_id in seen_in_arm:
                continue
            seen_in_arm.add(doc_id)
            rank += 1
            fused[doc_id] = fused.get(doc_id, 0.0) + weight / (k + rank)
    order = {doc_id: position for position, doc_id in enumerate(fused)}
    return sorted(fused.items(), key=lambda kv: (-kv[1], order[kv[0]]))


class HybridRetriever(BaseRetriever):
    """A dense arm and a lexical arm fused with RRF.

    Args:
        dense: Any fitted (or to-be-fitted) dense backend.
        lexical: The BM25 arm.
        rrf_k: RRF constant.
        weights: (dense weight, lexical weight).
        arm_depth: Candidates pulled from each arm before fusion;
            defaults to the query's ``top_k`` (fusion can only surface
            what an arm retrieved, so deeper arms buy recall for work).
    """

    backend = "hybrid"

    def __init__(
        self,
        dense: BaseRetriever,
        lexical: BM25Retriever | None = None,
        rrf_k: int = DEFAULT_RRF_K,
        weights: Sequence[float] = (1.0, 1.0),
        arm_depth: int | None = None,
    ):
        if rrf_k <= 0:
            raise ConfigError(f"rrf_k must be positive, got {rrf_k}")
        if len(tuple(weights)) != 2:
            raise ConfigError(
                f"hybrid weights must be (dense, lexical), got {tuple(weights)!r}"
            )
        if arm_depth is not None and arm_depth <= 0:
            raise ConfigError(f"arm_depth must be positive, got {arm_depth}")
        self.dense = dense
        self.lexical = lexical if lexical is not None else BM25Retriever()
        self.rrf_k = rrf_k
        self.weights = tuple(float(weight) for weight in weights)
        self.arm_depth = arm_depth

    @property
    def supports_add(self) -> bool:  # type: ignore[override]
        """Growable only when both arms are."""
        return self.dense.supports_add and self.lexical.supports_add

    def fit(self, ids: Sequence, data: Sequence) -> "HybridRetriever":
        """Fit both arms from (vector, tokens) pairs, one per id."""
        vectors = [vector for vector, _ in data]
        token_lists = [tokens for _, tokens in data]
        self.dense.fit(ids, vectors)
        self.lexical.fit(ids, token_lists)
        return self

    def add(self, ids: Sequence, data: Sequence) -> "HybridRetriever":
        """Extend both arms with new (vector, tokens) pairs.

        Raises:
            ConfigError: If either arm does not support incremental add.
            DataError: On a count mismatch in either arm.
        """
        if not self.supports_add:
            raise ConfigError(
                "hybrid add needs both arms to support incremental add "
                f"(dense={self.dense.backend!r}: {self.dense.supports_add}, "
                f"lexical={self.lexical.backend!r}: {self.lexical.supports_add})"
            )
        vectors = [vector for vector, _ in data]
        token_lists = [tokens for _, tokens in data]
        self.dense.add(ids, vectors)
        self.lexical.add(ids, token_lists)
        return self

    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """RRF over both arms' top lists; an absent side sits out.

        ``query`` is a :class:`HybridQuery` (or anything with ``tokens``
        and ``vector`` attributes).  An **empty** arm — zero tokens, or a
        zero-length vector — is normalised to absent before fusion: an
        empty token list would still walk BM25's postings (retrieving
        nothing) while its arm weight kept diluting the dense ranking,
        which is not what "this arm has no evidence" should mean.

        Raises:
            DataError: Only when *both* sides are empty or ``None``.
        """
        tokens = getattr(query, "tokens", None)
        vector = getattr(query, "vector", None)
        if tokens is not None:
            tokens = tuple(tokens)
            if not tokens:
                tokens = None
        if vector is not None and np.asarray(vector).size == 0:
            vector = None
        if tokens is None and vector is None:
            raise DataError(
                "hybrid query carries neither tokens nor a vector "
                "(empty arms count as absent)"
            )
        depth = self.arm_depth or top_k
        rankings = [
            self.dense.retrieve(vector, depth) if vector is not None else [],
            self.lexical.retrieve(tokens, depth) if tokens is not None else [],
        ]
        return rrf_fuse(rankings, k=self.rrf_k, weights=self.weights)[:top_k]

    def stats(self) -> RetrieverStats:
        dense = self.dense.stats()
        lexical = self.lexical.stats()
        return RetrieverStats(
            backend=self.backend,
            size=max(dense.size, lexical.size),
            dim=dense.dim,
            queries=max(dense.queries, lexical.queries),
            candidates_scored=dense.candidates_scored + lexical.candidates_scored,
            extra={
                "rrf_k": self.rrf_k,
                "weights": self.weights,
                "dense": {"backend": dense.backend, **dense.extra},
                "lexical": lexical.extra,
            },
        )

    def to_state(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "rrf_k": self.rrf_k,
            "weights": list(self.weights),
            "arm_depth": self.arm_depth,
            "dense": self.dense.to_state(),
            "lexical": self.lexical.to_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "HybridRetriever":
        """Rehydrate both fitted arms (dense backend chosen by its tag).

        Raises:
            DataError: On a wrong backend tag or malformed arm states.
        """
        from . import dense_index_from_state

        check_state_backend(state, cls.backend)
        try:
            depth = state.get("arm_depth")
            return cls(
                dense=dense_index_from_state(state["dense"]),
                lexical=BM25Retriever.from_state(state["lexical"]),
                rrf_k=int(state["rrf_k"]),
                weights=[float(weight) for weight in state["weights"]],
                arm_depth=int(depth) if depth is not None else None,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed hybrid retriever state: {error}") from error
