"""Exact dense retrieval: the recall oracle every ANN backend is judged by.

:class:`BruteForceDense` scores a query against *every* indexed vector
with one packed float32 matmul — O(n·d) per query, unbeatable recall,
and the baseline the benchmarks hold :class:`~repro.retrieval.ivf.IVFIndex`
and :class:`~repro.retrieval.hnsw.HNSWLiteIndex` against (recall@k ≥ 0.9,
latency ≥ 3x better at 10k items).

The module also owns the shared dense plumbing: float32 packing,
cosine/inner-product query preparation, base64 matrix (de)serialisation,
and the deterministic top-k selection (score desc, fit position asc) that
makes rankings reproducible across fits, warm starts, and backends.
"""

from __future__ import annotations

import base64
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import DataError
from .base import BaseRetriever, RetrieverStats, check_state_backend

#: Accepted similarity metrics ("cosine" normalises, "ip" does not).
METRICS = ("cosine", "ip")


def pack_vectors(vectors: Sequence, metric: str) -> np.ndarray:
    """Stack vectors into a C-contiguous float32 matrix.

    Cosine indexes store rows pre-normalised (zero vectors stay zero), so
    retrieval is a plain inner product either way.

    Raises:
        DataError: On an empty collection, ragged dims, or a bad metric.
    """
    if metric not in METRICS:
        raise DataError(f"unknown metric {metric!r}; expected one of {METRICS}")
    if len(vectors) == 0:
        raise DataError("dense retriever needs at least one vector")
    try:
        matrix = np.ascontiguousarray(np.stack(vectors), dtype=np.float32)
    except ValueError as error:
        raise DataError(f"vectors do not stack into a matrix: {error}") from error
    if matrix.ndim != 2:
        raise DataError(f"vectors must be 1-d, got shape {matrix.shape}")
    if metric == "cosine":
        matrix = normalize_rows(matrix)
    return matrix


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalise rows in float32; zero rows pass through unchanged."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return (matrix / np.where(norms == 0.0, 1.0, norms)).astype(np.float32)


def prepare_query(vector: Any, dim: int, metric: str) -> np.ndarray:
    """Validate and (for cosine) normalise one query vector.

    Raises:
        DataError: On a shape mismatch with the index.
    """
    query = np.asarray(vector, dtype=np.float32).reshape(-1)
    if query.shape[0] != dim:
        raise DataError(f"query dim {query.shape[0]} != index dim {dim}")
    if metric == "cosine":
        norm = float(query @ query) ** 0.5
        if norm > 0.0:
            query = query / norm
    return query


def top_k_positions(scores: np.ndarray, positions: np.ndarray, k: int) -> np.ndarray:
    """Indices into ``scores`` of the best ``k``, score desc / position asc.

    ``positions`` carries each score's global fit position, the
    deterministic tie-break shared by every backend.  Selection goes
    through ``argpartition`` first so the common case never sorts the
    whole collection.
    """
    n = scores.shape[0]
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k < n > 512:
        # argpartition narrows to ~k before the tie-breaking sort; below
        # ~512 elements its setup overhead loses to sorting outright.
        # The partition splits boundary-score ties arbitrarily, so the
        # tie group at the cut is re-gathered and trimmed by position —
        # without this, which tied document survives the cut would
        # depend on partition internals, not fit order.
        candidates = np.argpartition(-scores, k - 1)[:k]
        boundary = scores[candidates].min()
        spill = np.count_nonzero(scores == boundary) - np.count_nonzero(
            scores[candidates] == boundary
        )
        if spill:
            # Rare: boundary-score documents exist outside the partition.
            # Re-gather the whole tie group and keep its lowest positions.
            above = np.flatnonzero(scores > boundary)
            ties = np.flatnonzero(scores == boundary)
            keep = np.argsort(positions[ties])[: k - above.size]
            candidates = np.concatenate([above, ties[keep]])
        order = np.lexsort((positions[candidates], -scores[candidates]))
        return candidates[order]
    return np.lexsort((positions, -scores))[:k]


def matrix_to_state(matrix: np.ndarray) -> dict[str, Any]:
    """A float32 matrix as base64 little-endian bytes + shape."""
    data = np.ascontiguousarray(matrix, dtype="<f4")
    return {
        "shape": list(data.shape),
        "data": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def matrix_from_state(state: Mapping[str, Any]) -> np.ndarray:
    """Rehydrate :func:`matrix_to_state` output, bit-exactly.

    Raises:
        DataError: On missing fields, bad base64, or a count/shape clash.
    """
    try:
        shape = tuple(int(size) for size in state["shape"])
        raw = base64.b64decode(state["data"])
        matrix = np.frombuffer(raw, dtype="<f4").reshape(shape)
    except (KeyError, TypeError, ValueError) as error:
        raise DataError(f"malformed matrix state: {error}") from error
    return np.ascontiguousarray(matrix, dtype=np.float32)


class BruteForceDense(BaseRetriever):
    """Exact inner-product / cosine retrieval over a packed matrix.

    Args:
        metric: ``"cosine"`` (rows and queries normalised) or ``"ip"``.
    """

    backend = "bruteforce"
    supports_add = True

    def __init__(self, metric: str = "cosine"):
        if metric not in METRICS:
            raise DataError(f"unknown metric {metric!r}; expected one of {METRICS}")
        self.metric = metric
        self._ids: list = []
        self._matrix = np.empty((0, 0), dtype=np.float32)
        self._queries = 0
        self._scored = 0
        self._fitted = False

    def fit(self, ids: Sequence, data: Sequence) -> "BruteForceDense":
        """Index an id-aligned vector collection."""
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        self._matrix = pack_vectors(data, self.metric)
        self._ids = list(ids)
        self._queries = 0
        self._scored = 0
        self._fitted = True
        return self

    def add(self, ids: Sequence, data: Sequence) -> "BruteForceDense":
        """Append new vectors after the existing rows.

        Exactly refit-identical: packing normalises per row, so an index
        grown by ``add`` holds the same matrix (and fit positions) as one
        fitted from the concatenated collection.

        Raises:
            DataError: On a count or dimension mismatch.
        """
        self._require_fitted(self._fitted)
        if len(ids) != len(data):
            raise DataError(f"{len(ids)} ids for {len(data)} vectors")
        if not ids:
            return self
        rows = pack_vectors(data, self.metric)
        if rows.shape[1] != self._matrix.shape[1]:
            raise DataError(
                f"new vectors have dim {rows.shape[1]}, index has "
                f"{self._matrix.shape[1]}"
            )
        self._matrix = np.ascontiguousarray(np.vstack([self._matrix, rows]))
        self._ids.extend(ids)
        return self

    def retrieve(self, query: Any, top_k: int = 10) -> list[tuple[Any, float]]:
        """Exact top-k by one full-matrix inner product."""
        self._require_fitted(self._fitted)
        vector = prepare_query(query, self._matrix.shape[1], self.metric)
        scores = self._matrix @ vector
        self._queries += 1
        self._scored += scores.shape[0]
        positions = np.arange(scores.shape[0])
        best = top_k_positions(scores, positions, top_k)
        ids = self._ids
        return list(zip(map(ids.__getitem__, best.tolist()), scores[best].tolist()))

    def stats(self) -> RetrieverStats:
        return RetrieverStats(
            backend=self.backend,
            size=len(self._ids),
            dim=int(self._matrix.shape[1]) if self._fitted else 0,
            queries=self._queries,
            candidates_scored=self._scored,
            extra={"metric": self.metric},
        )

    def to_state(self) -> dict[str, Any]:
        self._require_fitted(self._fitted)
        return {
            "backend": self.backend,
            "metric": self.metric,
            "ids": list(self._ids),
            "matrix": matrix_to_state(self._matrix),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "BruteForceDense":
        """Rehydrate a fitted index; retrieval is bit-identical to the fit.

        Raises:
            DataError: On a wrong backend tag or malformed fields.
        """
        check_state_backend(state, cls.backend)
        try:
            index = cls(metric=str(state["metric"]))
            index._ids = list(state["ids"])
            index._matrix = matrix_from_state(state["matrix"])
        except KeyError as error:
            raise DataError(f"malformed dense index state: {error}") from error
        if len(index._ids) != index._matrix.shape[0]:
            raise DataError(
                f"dense index state has {len(index._ids)} ids for "
                f"{index._matrix.shape[0]} rows"
            )
        index._fitted = True
        return index
