"""Sublinear hybrid retrieval behind a pluggable interface (Section 6).

First-stage candidate generation, swappable per deployment:

- :class:`BruteForceDense` — exact dense scoring, the recall oracle;
- :class:`IVFIndex` — k-means inverted file, the sublinear latency backend;
- :class:`HNSWLiteIndex` — layered small-world graph ANN;
- :class:`BM25Retriever` — the existing inverted index, adapted;
- :class:`HybridRetriever` — dense + BM25 fused with Reciprocal Rank
  Fusion (:func:`rrf_fuse`).

All share :class:`BaseRetriever` (``fit`` / ``retrieve`` / ``stats`` /
``to_state``), deterministic fit-order tie-breaking, and JSON state
round-trips so snapshots warm-start a fitted index bit-identically.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import DataError
from .base import BaseRetriever, RetrieverStats, check_state_backend
from .dense import BruteForceDense
from .fusion import DEFAULT_RRF_K, HybridQuery, HybridRetriever, rrf_fuse
from .hnsw import HNSWLiteIndex
from .ivf import IVFIndex
from .lexical import BM25Retriever

#: Dense backend name -> class, the pluggable registry behind config
#: strings and serialised state tags.
DENSE_BACKENDS: dict[str, type[BaseRetriever]] = {
    BruteForceDense.backend: BruteForceDense,
    IVFIndex.backend: IVFIndex,
    HNSWLiteIndex.backend: HNSWLiteIndex,
}


def make_dense_index(backend: str, **kwargs: Any) -> BaseRetriever:
    """Construct an (unfitted) dense backend by registry name.

    Raises:
        DataError: On an unknown backend name.
    """
    cls = DENSE_BACKENDS.get(backend)
    if cls is None:
        known = ", ".join(sorted(DENSE_BACKENDS))
        raise DataError(f"unknown dense backend {backend!r}; expected one of: {known}")
    return cls(**kwargs)


def dense_index_from_state(state: Mapping[str, Any]) -> BaseRetriever:
    """Rehydrate any dense backend from its serialised state tag.

    Raises:
        DataError: On an unknown or missing backend tag.
    """
    backend = state.get("backend") if isinstance(state, Mapping) else None
    cls = DENSE_BACKENDS.get(backend)
    if cls is None:
        known = ", ".join(sorted(DENSE_BACKENDS))
        raise DataError(
            f"retriever state has unknown backend {backend!r}; "
            f"expected one of: {known}"
        )
    return cls.from_state(state)


def retriever_from_state(state: Mapping[str, Any]) -> BaseRetriever:
    """Rehydrate *any* retriever (dense, lexical, or hybrid) from state."""
    backend = state.get("backend") if isinstance(state, Mapping) else None
    if backend == BM25Retriever.backend:
        return BM25Retriever.from_state(state)
    if backend == HybridRetriever.backend:
        return HybridRetriever.from_state(state)
    return dense_index_from_state(state)


__all__ = [
    "BaseRetriever",
    "RetrieverStats",
    "BruteForceDense",
    "IVFIndex",
    "HNSWLiteIndex",
    "BM25Retriever",
    "HybridRetriever",
    "HybridQuery",
    "rrf_fuse",
    "DEFAULT_RRF_K",
    "DENSE_BACKENDS",
    "make_dense_index",
    "dense_index_from_state",
    "retriever_from_state",
    "check_state_backend",
]
